// xlf_explore — parallel trade-off exploration CLI.
//
// Sweeps the full (program algorithm x ECC capability) configuration
// space over a log-spaced lifetime grid, marks the per-age Pareto
// front, and optionally validates operating points with Monte-Carlo
// subsystem-simulator replicas per workload. Emits CSV (default) or
// JSON on stdout or --out.
//
// Determinism contract: for a fixed spec and --seed, the output is
// byte-identical for every --threads value (parallel tasks write
// preallocated slots; reduction is serial) — so exploration results
// are reproducible artifacts, not run-dependent samples.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/explore/ftl_sweep.hpp"
#include "src/explore/monte_carlo.hpp"
#include "src/explore/report.hpp"
#include "src/explore/sweep.hpp"
#include "src/sim/lifetime.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace xlf;

struct Options {
  double age_lo = 1.0;
  double age_hi = 1e6;
  std::size_t age_points = 13;
  unsigned threads = 0;  // 0 = hardware concurrency
  std::string format = "csv";
  std::string out_path;  // empty = stdout
  bool pareto_only = false;
  double uber_target = 1e-11;
  std::string point = "baseline";
  std::vector<std::string> workloads{"sequential-read", "random-read",
                                     "write-burst", "mixed", "streaming"};
  std::size_t mc_replicas = 0;  // 0 = skip Monte-Carlo
  std::size_t mc_requests = 32;
  double mc_age = -1.0;  // <0 = last grid age
  std::uint64_t seed = 0x5EEDCA5E;

  // FTL sweep mode (replaces the configuration-space sweep).
  bool ftl_sweep = false;
  std::string ftl_topologies = "1x1,2x1";  // channels x dies/channel
  std::string ftl_qd = "1,4";
  std::string ftl_gc = "greedy,cost-benefit";
  std::size_t ftl_requests = 200;
  std::uint32_t ftl_blocks = 8;
  std::uint32_t ftl_pages = 4;
  double ftl_initial_wear = 1e4;
  double ftl_wear_per_erase = 3e4;
  double ftl_logical_fraction = 0.6;
  double ftl_read_fraction = 0.3;
  double ftl_hot_fraction = 0.25;
  double ftl_hot_writes = 0.85;
};

void usage() {
  std::cerr <<
      "usage: xlf_explore [options]\n"
      "  --ages LO:HI:POINTS   log-spaced P/E grid (default 1:1e6:13)\n"
      "  --threads N           total threads, 1 = serial (default: hardware)\n"
      "  --format csv|json     output format (default csv)\n"
      "  --out PATH            write to PATH instead of stdout\n"
      "  --pareto-only         emit only Pareto-front rows of the space\n"
      "  --uber-target X       UBER target for the ECC schedule (1e-11)\n"
      "  --point NAME          baseline|min-uber|max-read (baseline)\n"
      "  --workloads LIST      comma list of sequential-read,random-read,\n"
      "                        write-burst,mixed,streaming\n"
      "  --mc-replicas R       Monte-Carlo replicas per workload (0 = off)\n"
      "  --mc-requests N       requests per replica (32)\n"
      "  --mc-age CYCLES       age for the validation (default: last grid age)\n"
      "  --seed S              root seed for all replica streams\n"
      "FTL sweep mode (multi-die SSD: L2P + GC + wear leveling):\n"
      "  --ftl-sweep           sweep FTL policy x queue depth x topology\n"
      "                        instead of the configuration space\n"
      "  --ftl-topologies L    comma list of CxD (channels x dies/channel,\n"
      "                        default 1x1,2x1)\n"
      "  --ftl-qd LIST         queue depths (default 1,4)\n"
      "  --ftl-gc LIST         greedy,cost-benefit (default both)\n"
      "  --ftl-requests N      host requests per combo (200)\n"
      "  --ftl-blocks B        blocks per die (8)\n"
      "  --ftl-pages P         pages per block (4)\n"
      "  --ftl-initial-wear C  uniform starting P/E cycles (1e4)\n"
      "  --ftl-wear-per-erase C  lifetime compression per erase (3e4)\n"
      "  --ftl-logical-fraction F  logical share of physical pages (0.6)\n"
      "  --ftl-read-fraction F hot-cold workload read share (0.3)\n"
      "  --ftl-hot-fraction F  hot slice of the LPA space (0.25)\n"
      "  --ftl-hot-writes F    write share hitting the hot slice (0.85)\n";
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "xlf_explore: missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg == "--pareto-only") {
      opt.pareto_only = true;
    } else if (arg == "--ages") {
      if ((v = value(i)) == nullptr) return false;
      const auto parts = split(v, ':');
      if (parts.size() != 3) {
        std::cerr << "xlf_explore: --ages expects LO:HI:POINTS\n";
        return false;
      }
      opt.age_lo = std::atof(parts[0].c_str());
      opt.age_hi = std::atof(parts[1].c_str());
      opt.age_points = static_cast<std::size_t>(std::atoll(parts[2].c_str()));
    } else if (arg == "--threads") {
      if ((v = value(i)) == nullptr) return false;
      const long threads = std::atol(v);
      if (threads < 0 || threads > 4096) {
        std::cerr << "xlf_explore: --threads must be in [0, 4096]\n";
        return false;
      }
      opt.threads = static_cast<unsigned>(threads);
    } else if (arg == "--format") {
      if ((v = value(i)) == nullptr) return false;
      opt.format = v;
    } else if (arg == "--out") {
      if ((v = value(i)) == nullptr) return false;
      opt.out_path = v;
    } else if (arg == "--uber-target") {
      if ((v = value(i)) == nullptr) return false;
      opt.uber_target = std::atof(v);
    } else if (arg == "--point") {
      if ((v = value(i)) == nullptr) return false;
      opt.point = v;
    } else if (arg == "--workloads") {
      if ((v = value(i)) == nullptr) return false;
      opt.workloads = split(v, ',');
    } else if (arg == "--mc-replicas") {
      if ((v = value(i)) == nullptr) return false;
      opt.mc_replicas = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--mc-requests") {
      if ((v = value(i)) == nullptr) return false;
      opt.mc_requests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--mc-age") {
      if ((v = value(i)) == nullptr) return false;
      opt.mc_age = std::atof(v);
    } else if (arg == "--seed") {
      if ((v = value(i)) == nullptr) return false;
      opt.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--ftl-sweep") {
      opt.ftl_sweep = true;
    } else if (arg == "--ftl-topologies") {
      if ((v = value(i)) == nullptr) return false;
      opt.ftl_topologies = v;
    } else if (arg == "--ftl-qd") {
      if ((v = value(i)) == nullptr) return false;
      opt.ftl_qd = v;
    } else if (arg == "--ftl-gc") {
      if ((v = value(i)) == nullptr) return false;
      opt.ftl_gc = v;
    } else if (arg == "--ftl-requests") {
      if ((v = value(i)) == nullptr) return false;
      opt.ftl_requests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--ftl-blocks") {
      if ((v = value(i)) == nullptr) return false;
      opt.ftl_blocks = static_cast<std::uint32_t>(std::atol(v));
    } else if (arg == "--ftl-pages") {
      if ((v = value(i)) == nullptr) return false;
      opt.ftl_pages = static_cast<std::uint32_t>(std::atol(v));
    } else if (arg == "--ftl-initial-wear") {
      if ((v = value(i)) == nullptr) return false;
      opt.ftl_initial_wear = std::atof(v);
    } else if (arg == "--ftl-wear-per-erase") {
      if ((v = value(i)) == nullptr) return false;
      opt.ftl_wear_per_erase = std::atof(v);
    } else if (arg == "--ftl-logical-fraction") {
      if ((v = value(i)) == nullptr) return false;
      opt.ftl_logical_fraction = std::atof(v);
    } else if (arg == "--ftl-read-fraction") {
      if ((v = value(i)) == nullptr) return false;
      opt.ftl_read_fraction = std::atof(v);
    } else if (arg == "--ftl-hot-fraction") {
      if ((v = value(i)) == nullptr) return false;
      opt.ftl_hot_fraction = std::atof(v);
    } else if (arg == "--ftl-hot-writes") {
      if ((v = value(i)) == nullptr) return false;
      opt.ftl_hot_writes = std::atof(v);
    } else {
      std::cerr << "xlf_explore: unknown option " << arg << "\n";
      usage();
      return false;
    }
  }
  if (opt.format != "csv" && opt.format != "json") {
    std::cerr << "xlf_explore: --format must be csv or json\n";
    return false;
  }
  if (opt.age_points < 2 || opt.age_lo <= 0.0 || opt.age_hi <= opt.age_lo) {
    std::cerr << "xlf_explore: invalid --ages grid\n";
    return false;
  }
  return true;
}

std::unique_ptr<sim::Workload> make_workload(const std::string& name) {
  if (name == "sequential-read") {
    return std::make_unique<sim::SequentialReadWorkload>();
  }
  if (name == "random-read") {
    return std::make_unique<sim::RandomReadWorkload>();
  }
  if (name == "write-burst") {
    return std::make_unique<sim::WriteBurstWorkload>();
  }
  if (name == "mixed") {
    return std::make_unique<sim::MixedWorkload>(0.7);
  }
  if (name == "streaming") {
    return std::make_unique<sim::MultimediaStreamingWorkload>(
        BytesPerSecond::mib(8.0));
  }
  return nullptr;
}

core::OperatingPoint make_point(const std::string& name) {
  if (name == "min-uber") return core::OperatingPoint::min_uber();
  if (name == "max-read") return core::OperatingPoint::max_read();
  return core::OperatingPoint::baseline();
}

bool make_ftl_spec(const Options& opt, explore::FtlSweepSpec& spec) {
  spec.base.die.device.array.geometry.blocks = opt.ftl_blocks;
  spec.base.die.device.array.geometry.pages_per_block = opt.ftl_pages;
  spec.base.die.cross_layer.uber_target = opt.uber_target;
  spec.base.die.controller.reliability.uber_target = opt.uber_target;
  spec.base.initial_pe_cycles = opt.ftl_initial_wear;
  spec.base.ftl.pe_cycles_per_erase = opt.ftl_wear_per_erase;
  spec.base.ftl.logical_fraction = opt.ftl_logical_fraction;
  spec.base.point = make_point(opt.point);
  spec.requests = opt.ftl_requests;
  spec.read_fraction = opt.ftl_read_fraction;
  spec.hot_fraction = opt.ftl_hot_fraction;
  spec.hot_write_fraction = opt.ftl_hot_writes;
  spec.seed = opt.seed;

  spec.topologies.clear();
  for (const std::string& part : split(opt.ftl_topologies, ',')) {
    unsigned channels = 0, dies = 0;
    if (std::sscanf(part.c_str(), "%ux%u", &channels, &dies) != 2 ||
        channels == 0 || dies == 0) {
      std::cerr << "xlf_explore: --ftl-topologies expects CxD entries, got "
                << part << "\n";
      return false;
    }
    spec.topologies.push_back(controller::DispatchConfig{channels, dies});
  }
  spec.queue_depths.clear();
  for (const std::string& part : split(opt.ftl_qd, ',')) {
    const long qd = std::atol(part.c_str());
    if (qd < 1) {
      std::cerr << "xlf_explore: --ftl-qd entries must be >= 1\n";
      return false;
    }
    spec.queue_depths.push_back(static_cast<std::size_t>(qd));
  }
  spec.gc_policies.clear();
  for (const std::string& part : split(opt.ftl_gc, ',')) {
    if (part == "greedy") {
      spec.gc_policies.push_back(ftl::GcPolicy::kGreedy);
    } else if (part == "cost-benefit") {
      spec.gc_policies.push_back(ftl::GcPolicy::kCostBenefit);
    } else {
      std::cerr << "xlf_explore: unknown GC policy " << part << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  ThreadPool pool(opt.threads);

  if (opt.ftl_sweep) {
    explore::FtlSweepSpec ftl_spec;
    if (!make_ftl_spec(opt, ftl_spec)) return 2;
    const explore::FtlSweepResult result = explore::ftl_sweep(ftl_spec, pool);
    std::string report;
    if (opt.format == "csv") {
      report = explore::ftl_csv(result);
    } else {
      report = "{\"ftl\":";
      report += explore::ftl_json(result);
      report += "}";
    }
    if (opt.out_path.empty()) {
      std::cout << report;
    } else {
      std::ofstream file(opt.out_path);
      if (!file) {
        std::cerr << "xlf_explore: cannot open " << opt.out_path << "\n";
        return 1;
      }
      file << report;
    }
    return 0;
  }

  core::SubsystemConfig subsystem = core::SubsystemConfig::defaults();
  subsystem.cross_layer.uber_target = opt.uber_target;

  explore::SweepSpec sweep_spec;
  sweep_spec.framework = explore::FrameworkSpec::from(subsystem);
  sweep_spec.ages = log_space(opt.age_lo, opt.age_hi, opt.age_points);

  explore::SweepResult space = explore::sweep_space(sweep_spec, pool);
  if (opt.pareto_only) {
    explore::SweepResult front;
    // Front sizes vary per age, so the filtered rows are no longer an
    // ages x cells_per_age grid; 0 signals the irregular layout.
    front.cells_per_age = 0;
    for (const explore::SweepCell& cell : space.cells) {
      if (cell.pareto) front.cells.push_back(cell);
    }
    space = std::move(front);
  }

  std::vector<explore::WorkloadValidation> validations;
  if (opt.mc_replicas > 0) {
    const double mc_age =
        opt.mc_age >= 0.0 ? opt.mc_age : sweep_spec.ages.back();
    // One root stream per workload, derived serially from --seed so
    // adding a workload never reshuffles the others' replicas.
    Rng workload_seeder(opt.seed);
    for (const std::string& name : opt.workloads) {
      const std::uint64_t workload_seed = workload_seeder.next();
      const std::unique_ptr<sim::Workload> workload = make_workload(name);
      if (workload == nullptr) {
        std::cerr << "xlf_explore: unknown workload " << name << "\n";
        return 2;
      }
      explore::MonteCarloSpec mc;
      mc.subsystem = subsystem;
      mc.point = make_point(opt.point);
      mc.pe_cycles = mc_age;
      mc.workload = workload.get();
      mc.requests_per_replica = opt.mc_requests;
      mc.replicas = opt.mc_replicas;
      mc.seed = workload_seed;
      validations.push_back(explore::WorkloadValidation{
          workload->name(), mc_age, explore::run_monte_carlo(mc, pool)});
    }
  }

  std::string report;
  if (opt.format == "csv") {
    report = explore::sweep_csv(space);
    if (!validations.empty()) {
      report += "\n";
      report += explore::qos_csv(validations);
    }
  } else {
    report = "{\"sweep\":" + explore::sweep_json(space);
    report += ",\"qos\":" + explore::qos_json(validations);
    report += "}";
  }

  if (opt.out_path.empty()) {
    std::cout << report;
  } else {
    std::ofstream file(opt.out_path);
    if (!file) {
      std::cerr << "xlf_explore: cannot open " << opt.out_path << "\n";
      return 1;
    }
    file << report;
  }
  return 0;
}
