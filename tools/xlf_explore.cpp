// xlf_explore — parallel trade-off exploration CLI.
//
// Two ways to describe an experiment:
//  * flags (below) for quick interactive runs;
//  * --spec file.json, a declarative experiment spec (the JSON shape
//    is documented in src/explore/experiment.hpp and examples/specs/)
//    which can additionally sweep arbitrary policy combinations —
//    GC x wear x tuning x refresh — by registry name.
// Both paths build the same explore::ExperimentSpec and run through
// explore::run_experiment, so a spec that mirrors a flag set produces
// byte-identical output.
//
// Engines: the (program algorithm x ECC capability) configuration
// space over a log-spaced lifetime grid with per-age Pareto fronts
// and optional Monte-Carlo validation, or the multi-die FTL sweep
// (topology x queue depth x policy combination). Emits CSV (default)
// or JSON on stdout or --out.
//
// Determinism contract: for a fixed spec and --seed, the output is
// byte-identical for every --threads value (parallel tasks write
// preallocated slots; reduction is serial) — so exploration results
// are reproducible artifacts, not run-dependent samples.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/explore/experiment.hpp"
#include "src/policy/policy.hpp"
#include "src/policy/registry.hpp"
#include "src/util/thread_pool.hpp"

namespace {

using namespace xlf;

struct Options {
  explore::ExperimentSpec experiment = explore::ExperimentSpec::defaults();
  std::string spec_path;        // --spec; exclusive with shaping flags
  bool shaped_by_flags = false; // any experiment-shaping flag seen
  bool show_version = false;    // --version/--build-info; excl. --spec
  unsigned threads = 0;         // 0 = hardware concurrency
  std::string format;           // empty = csv
  std::string out_path;         // empty = stdout
};

// Build provenance (--version/--build-info): with sweeps feeding CSV
// artifacts into papers, the binary must be able to say exactly what
// produced the bytes — compiler, build type, sanitizer runtimes. The
// macros are injected per-configure from tools/CMakeLists.txt.
void print_build_info() {
  std::cout << "xlf_explore " << XLF_VERSION << "\n"
            << "compiler: " << XLF_COMPILER << "\n"
            << "build type: " << XLF_BUILD_TYPE << "\n"
            << "sanitizers: " << XLF_SANITIZERS << "\n";
}

void usage() {
  std::cerr <<
      "usage: xlf_explore [options]\n"
      "  --spec FILE           run a declarative JSON experiment spec\n"
      "                        (exclusive with the sweep-shaping flags below;\n"
      "                        --threads/--format/--out still apply)\n"
      "  --list-policies       print the registered policy names per kind\n"
      "                        (tuning, gc, wear, refresh, arbitration) and exit\n"
      "  --version             print version + build provenance (compiler,\n"
      "  --build-info          build type, sanitizer flags) and exit;\n"
      "                        exclusive with --spec\n"
      "  --threads N           total threads, 1 = serial (default: hardware)\n"
      "  --format csv|json     output format (default csv)\n"
      "  --out PATH            write to PATH instead of stdout\n"
      "  --ages LO:HI:POINTS   log-spaced P/E grid (default 1:1e6:13)\n"
      "  --pareto-only         emit only Pareto-front rows of the space\n"
      "  --uber-target X       UBER target for the ECC schedule (1e-11)\n"
      "  --point NAME          baseline|min-uber|max-read (baseline)\n"
      "  --workloads LIST      comma list of sequential-read,random-read,\n"
      "                        write-burst,mixed,streaming\n"
      "  --mc-replicas R       Monte-Carlo replicas per workload (0 = off)\n"
      "  --mc-requests N       requests per replica (32)\n"
      "  --mc-age CYCLES       age for the validation (default: last grid age)\n"
      "  --seed S              root seed for all replica streams\n"
      "FTL sweep mode (multi-die SSD: L2P + GC + wear leveling + refresh):\n"
      "  --ftl-sweep           sweep FTL policy x queue depth x topology\n"
      "                        instead of the configuration space\n"
      "  --ftl-topologies L    comma list of CxD (channels x dies/channel,\n"
      "                        default 1x1,2x1)\n"
      "  --ftl-qd LIST         queue depths (default 1,4)\n"
      "  --ftl-queues LIST     submission-queue counts (default 1)\n"
      "  --ftl-arbitration LIST  arbitration policies by registry name\n"
      "                        (default round-robin)\n"
      "  --ftl-queue-weights LIST  per-queue arbitration weights, queue 0\n"
      "                        first (shorter lists pad with 1; default equal)\n"
      "  --ftl-gc LIST         GC policies by registry name\n"
      "                        (default greedy,cost-benefit)\n"
      "  --ftl-wear LIST       wear policies by registry name (default dynamic)\n"
      "  --ftl-tuning LIST     tuning policies by registry name\n"
      "                        (default model_based)\n"
      "  --ftl-refresh LIST    refresh policies by registry name (default none)\n"
      "  --ftl-fail-blocks LIST  grown-bad blocks injected per die (the\n"
      "                        lowest block ids fail on first erase;\n"
      "                        default 0 — needs spare blocks beyond the\n"
      "                        logical share + GC slack)\n"
      "  --ftl-requests N      host requests per combo (200)\n"
      "  --ftl-blocks B        blocks per die (8)\n"
      "  --ftl-pages P         pages per block (4)\n"
      "  --ftl-initial-wear C  uniform starting P/E cycles (1e4)\n"
      "  --ftl-wear-per-erase C  lifetime compression per erase (3e4)\n"
      "  --ftl-logical-fraction F  logical share of physical pages (0.6)\n"
      "  --ftl-read-fraction F hot-cold workload read share (0.3)\n"
      "  --ftl-hot-fraction F  hot slice of the LPA space (0.25)\n"
      "  --ftl-hot-writes F    write share hitting the hot slice (0.85)\n"
      "  --ftl-trim-fraction F share of non-read requests that trim a\n"
      "                        written LPA (0)\n"
      "  --ftl-data-plane M    bit-true | meta: cell arrays or metadata-only\n"
      "                        devices (timing/energy models, no payload\n"
      "                        bits; default bit-true)\n"
      "  --ftl-shard-dies      shard each combo's cell work into per-die\n"
      "                        queues drained on the thread pool (combos\n"
      "                        then run serially; rows are byte-identical\n"
      "                        either way; needs bit-true data plane)\n"
      "  --ftl-perf            report wall-clock commands/s per combo\n"
      "                        beside the deterministic rows (JSON only)\n";
}

// The discovery companion of the registry's unknown-name errors: the
// same sorted name lists, one line per policy kind.
void list_policies() {
  const auto line = [](const char* kind, const std::vector<std::string>& names) {
    std::cout << kind << ":";
    for (const std::string& name : names) std::cout << " " << name;
    std::cout << "\n";
  };
  using policy::PolicyRegistry;
  line("tuning", PolicyRegistry<policy::TuningPolicy>::instance().names());
  line("gc", PolicyRegistry<policy::GcPolicy>::instance().names());
  line("wear", PolicyRegistry<policy::WearPolicy>::instance().names());
  line("refresh", PolicyRegistry<policy::RefreshPolicy>::instance().names());
  line("arbitration",
       PolicyRegistry<policy::ArbitrationPolicy>::instance().names());
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool parse_topologies(const std::string& list, Options& opt) {
  opt.experiment.ftl.topologies.clear();
  for (const std::string& part : split(list, ',')) {
    const std::optional<controller::DispatchConfig> topology =
        explore::parse_topology(part);
    if (!topology.has_value()) {
      std::cerr << "xlf_explore: --ftl-topologies expects CxD entries, got "
                << part << "\n";
      return false;
    }
    opt.experiment.ftl.topologies.push_back(*topology);
  }
  return true;
}

bool parse_args(int argc, char** argv, Options& opt) {
  explore::ExperimentSpec& exp = opt.experiment;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "xlf_explore: missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  // Experiment-shaping flags mark the options object so a conflicting
  // --spec can be rejected; output/threading flags stay independent.
  auto shape = [&] { opt.shaped_by_flags = true; };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg == "--list-policies") {
      list_policies();
      std::exit(0);
    } else if (arg == "--version" || arg == "--build-info") {
      // Not an immediate exit: a later --spec on the line must still
      // be rejected (same exclusivity teaching as shaping flags).
      opt.show_version = true;
    } else if (arg == "--spec") {
      if ((v = value(i)) == nullptr) return false;
      opt.spec_path = v;
    } else if (arg == "--pareto-only") {
      shape();
      exp.pareto_only = true;
    } else if (arg == "--ages") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      const auto parts = split(v, ':');
      if (parts.size() != 3) {
        std::cerr << "xlf_explore: --ages expects LO:HI:POINTS\n";
        return false;
      }
      exp.age_lo = std::atof(parts[0].c_str());
      exp.age_hi = std::atof(parts[1].c_str());
      exp.age_points = static_cast<std::size_t>(std::atoll(parts[2].c_str()));
      if (exp.age_points < 2 || exp.age_lo <= 0.0 ||
          exp.age_hi <= exp.age_lo) {
        std::cerr << "xlf_explore: invalid --ages grid\n";
        return false;
      }
    } else if (arg == "--threads") {
      if ((v = value(i)) == nullptr) return false;
      const long threads = std::atol(v);
      if (threads < 0 || threads > 4096) {
        std::cerr << "xlf_explore: --threads must be in [0, 4096]\n";
        return false;
      }
      opt.threads = static_cast<unsigned>(threads);
    } else if (arg == "--format") {
      if ((v = value(i)) == nullptr) return false;
      opt.format = v;
      if (opt.format != "csv" && opt.format != "json") {
        std::cerr << "xlf_explore: --format must be csv or json\n";
        return false;
      }
    } else if (arg == "--out") {
      if ((v = value(i)) == nullptr) return false;
      opt.out_path = v;
    } else if (arg == "--uber-target") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.uber_target = std::atof(v);
    } else if (arg == "--point") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.point = v;
    } else if (arg == "--workloads") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.mc_workloads = split(v, ',');
    } else if (arg == "--mc-replicas") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.mc_replicas = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--mc-requests") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.mc_requests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--mc-age") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.mc_age = std::atof(v);
    } else if (arg == "--seed") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--ftl-sweep") {
      shape();
      exp.mode = explore::ExperimentSpec::Mode::kFtlSweep;
    } else if (arg == "--ftl-topologies") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      if (!parse_topologies(v, opt)) return false;
    } else if (arg == "--ftl-qd") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.queue_depths.clear();
      for (const std::string& part : split(v, ',')) {
        const long qd = std::atol(part.c_str());
        if (qd < 1) {
          std::cerr << "xlf_explore: --ftl-qd entries must be >= 1\n";
          return false;
        }
        exp.ftl.queue_depths.push_back(static_cast<std::size_t>(qd));
      }
    } else if (arg == "--ftl-queues") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.queue_counts.clear();
      for (const std::string& part : split(v, ',')) {
        const long queues = std::atol(part.c_str());
        if (queues < 1) {
          std::cerr << "xlf_explore: --ftl-queues entries must be >= 1\n";
          return false;
        }
        exp.ftl.queue_counts.push_back(static_cast<std::size_t>(queues));
      }
    } else if (arg == "--ftl-arbitration") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.arbitration_policies = split(v, ',');
    } else if (arg == "--ftl-queue-weights") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.queue_weights.clear();
      for (const std::string& part : split(v, ',')) {
        const double weight = std::atof(part.c_str());
        if (weight <= 0.0) {
          std::cerr << "xlf_explore: --ftl-queue-weights entries must be "
                       "> 0\n";
          return false;
        }
        exp.ftl.queue_weights.push_back(weight);
      }
    } else if (arg == "--ftl-trim-fraction") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.trim_fraction = std::atof(v);
      if (exp.ftl.trim_fraction < 0.0 || exp.ftl.trim_fraction >= 1.0) {
        std::cerr << "xlf_explore: --ftl-trim-fraction must lie in [0, 1)\n";
        return false;
      }
    } else if (arg == "--ftl-gc") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.gc_policies = split(v, ',');
    } else if (arg == "--ftl-wear") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.wear_policies = split(v, ',');
    } else if (arg == "--ftl-tuning") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.tuning_policies = split(v, ',');
    } else if (arg == "--ftl-refresh") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.refresh_policies = split(v, ',');
    } else if (arg == "--ftl-fail-blocks") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.fail_blocks.clear();
      for (const std::string& part : split(v, ',')) {
        const long fail = std::atol(part.c_str());
        if (fail < 0) {
          std::cerr << "xlf_explore: --ftl-fail-blocks entries must be >= 0\n";
          return false;
        }
        exp.ftl.fail_blocks.push_back(static_cast<std::uint32_t>(fail));
      }
    } else if (arg == "--ftl-requests") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.requests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--ftl-blocks") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.base.die.device.array.geometry.blocks =
          static_cast<std::uint32_t>(std::atol(v));
    } else if (arg == "--ftl-pages") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.base.die.device.array.geometry.pages_per_block =
          static_cast<std::uint32_t>(std::atol(v));
    } else if (arg == "--ftl-initial-wear") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.base.initial_pe_cycles = std::atof(v);
    } else if (arg == "--ftl-wear-per-erase") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.base.ftl.pe_cycles_per_erase = std::atof(v);
    } else if (arg == "--ftl-logical-fraction") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.base.ftl.logical_fraction = std::atof(v);
    } else if (arg == "--ftl-read-fraction") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.read_fraction = std::atof(v);
    } else if (arg == "--ftl-hot-fraction") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.hot_fraction = std::atof(v);
    } else if (arg == "--ftl-hot-writes") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      exp.ftl.hot_write_fraction = std::atof(v);
    } else if (arg == "--ftl-data-plane") {
      shape();
      if ((v = value(i)) == nullptr) return false;
      const std::string mode = v;
      if (mode == "bit-true") {
        exp.ftl.data_plane = true;
      } else if (mode == "meta") {
        exp.ftl.data_plane = false;
      } else {
        std::cerr << "xlf_explore: --ftl-data-plane expects bit-true or "
                     "meta, got "
                  << mode << "\n";
        return false;
      }
    } else if (arg == "--ftl-shard-dies") {
      shape();
      exp.ftl.shard_dies = true;
    } else if (arg == "--ftl-perf") {
      shape();
      exp.ftl.measure_throughput = true;
    } else {
      std::cerr << "xlf_explore: unknown flag '" << arg
                << "' (try --help)\n";
      return false;
    }
  }
  if (!exp.ftl.data_plane && exp.ftl.shard_dies) {
    std::cerr << "xlf_explore: --ftl-shard-dies needs the bit-true data "
                 "plane (metadata-only devices have no cell work to "
                 "shard)\n";
    return false;
  }
  if (!opt.spec_path.empty() && opt.shaped_by_flags) {
    std::cerr << "xlf_explore: --spec is exclusive with the sweep-shaping "
                 "flags; put the experiment in the spec file "
                 "(--threads/--format/--out still apply)\n";
    return false;
  }
  if (opt.show_version && !opt.spec_path.empty()) {
    std::cerr << "xlf_explore: --version/--build-info is exclusive with "
                 "--spec; query provenance and run the experiment as two "
                 "invocations\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  if (opt.show_version) {
    print_build_info();
    return 0;
  }

  try {
    if (!opt.spec_path.empty()) {
      opt.experiment = explore::load_experiment(opt.spec_path);
    }
    const std::string format = opt.format.empty() ? "csv" : opt.format;

    ThreadPool pool(opt.threads);
    const std::string report =
        explore::run_experiment(opt.experiment, pool, format);

    if (opt.out_path.empty()) {
      std::cout << report;
    } else {
      std::ofstream file(opt.out_path);
      if (!file) {
        std::cerr << "xlf_explore: cannot open " << opt.out_path << "\n";
        return 1;
      }
      file << report;
    }
  } catch (const std::exception& e) {
    std::cerr << "xlf_explore: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
