// xlf_explore — parallel trade-off exploration CLI.
//
// Sweeps the full (program algorithm x ECC capability) configuration
// space over a log-spaced lifetime grid, marks the per-age Pareto
// front, and optionally validates operating points with Monte-Carlo
// subsystem-simulator replicas per workload. Emits CSV (default) or
// JSON on stdout or --out.
//
// Determinism contract: for a fixed spec and --seed, the output is
// byte-identical for every --threads value (parallel tasks write
// preallocated slots; reduction is serial) — so exploration results
// are reproducible artifacts, not run-dependent samples.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/explore/monte_carlo.hpp"
#include "src/explore/report.hpp"
#include "src/explore/sweep.hpp"
#include "src/sim/lifetime.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace xlf;

struct Options {
  double age_lo = 1.0;
  double age_hi = 1e6;
  std::size_t age_points = 13;
  unsigned threads = 0;  // 0 = hardware concurrency
  std::string format = "csv";
  std::string out_path;  // empty = stdout
  bool pareto_only = false;
  double uber_target = 1e-11;
  std::string point = "baseline";
  std::vector<std::string> workloads{"sequential-read", "random-read",
                                     "write-burst", "mixed", "streaming"};
  std::size_t mc_replicas = 0;  // 0 = skip Monte-Carlo
  std::size_t mc_requests = 32;
  double mc_age = -1.0;  // <0 = last grid age
  std::uint64_t seed = 0x5EEDCA5E;
};

void usage() {
  std::cerr <<
      "usage: xlf_explore [options]\n"
      "  --ages LO:HI:POINTS   log-spaced P/E grid (default 1:1e6:13)\n"
      "  --threads N           total threads, 1 = serial (default: hardware)\n"
      "  --format csv|json     output format (default csv)\n"
      "  --out PATH            write to PATH instead of stdout\n"
      "  --pareto-only         emit only Pareto-front rows of the space\n"
      "  --uber-target X       UBER target for the ECC schedule (1e-11)\n"
      "  --point NAME          baseline|min-uber|max-read (baseline)\n"
      "  --workloads LIST      comma list of sequential-read,random-read,\n"
      "                        write-burst,mixed,streaming\n"
      "  --mc-replicas R       Monte-Carlo replicas per workload (0 = off)\n"
      "  --mc-requests N       requests per replica (32)\n"
      "  --mc-age CYCLES       age for the validation (default: last grid age)\n"
      "  --seed S              root seed for all replica streams\n";
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "xlf_explore: missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg == "--pareto-only") {
      opt.pareto_only = true;
    } else if (arg == "--ages") {
      if ((v = value(i)) == nullptr) return false;
      const auto parts = split(v, ':');
      if (parts.size() != 3) {
        std::cerr << "xlf_explore: --ages expects LO:HI:POINTS\n";
        return false;
      }
      opt.age_lo = std::atof(parts[0].c_str());
      opt.age_hi = std::atof(parts[1].c_str());
      opt.age_points = static_cast<std::size_t>(std::atoll(parts[2].c_str()));
    } else if (arg == "--threads") {
      if ((v = value(i)) == nullptr) return false;
      const long threads = std::atol(v);
      if (threads < 0 || threads > 4096) {
        std::cerr << "xlf_explore: --threads must be in [0, 4096]\n";
        return false;
      }
      opt.threads = static_cast<unsigned>(threads);
    } else if (arg == "--format") {
      if ((v = value(i)) == nullptr) return false;
      opt.format = v;
    } else if (arg == "--out") {
      if ((v = value(i)) == nullptr) return false;
      opt.out_path = v;
    } else if (arg == "--uber-target") {
      if ((v = value(i)) == nullptr) return false;
      opt.uber_target = std::atof(v);
    } else if (arg == "--point") {
      if ((v = value(i)) == nullptr) return false;
      opt.point = v;
    } else if (arg == "--workloads") {
      if ((v = value(i)) == nullptr) return false;
      opt.workloads = split(v, ',');
    } else if (arg == "--mc-replicas") {
      if ((v = value(i)) == nullptr) return false;
      opt.mc_replicas = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--mc-requests") {
      if ((v = value(i)) == nullptr) return false;
      opt.mc_requests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--mc-age") {
      if ((v = value(i)) == nullptr) return false;
      opt.mc_age = std::atof(v);
    } else if (arg == "--seed") {
      if ((v = value(i)) == nullptr) return false;
      opt.seed = std::strtoull(v, nullptr, 0);
    } else {
      std::cerr << "xlf_explore: unknown option " << arg << "\n";
      usage();
      return false;
    }
  }
  if (opt.format != "csv" && opt.format != "json") {
    std::cerr << "xlf_explore: --format must be csv or json\n";
    return false;
  }
  if (opt.age_points < 2 || opt.age_lo <= 0.0 || opt.age_hi <= opt.age_lo) {
    std::cerr << "xlf_explore: invalid --ages grid\n";
    return false;
  }
  return true;
}

std::unique_ptr<sim::Workload> make_workload(const std::string& name) {
  if (name == "sequential-read") {
    return std::make_unique<sim::SequentialReadWorkload>();
  }
  if (name == "random-read") {
    return std::make_unique<sim::RandomReadWorkload>();
  }
  if (name == "write-burst") {
    return std::make_unique<sim::WriteBurstWorkload>();
  }
  if (name == "mixed") {
    return std::make_unique<sim::MixedWorkload>(0.7);
  }
  if (name == "streaming") {
    return std::make_unique<sim::MultimediaStreamingWorkload>(
        BytesPerSecond::mib(8.0));
  }
  return nullptr;
}

core::OperatingPoint make_point(const std::string& name) {
  if (name == "min-uber") return core::OperatingPoint::min_uber();
  if (name == "max-read") return core::OperatingPoint::max_read();
  return core::OperatingPoint::baseline();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  ThreadPool pool(opt.threads);

  core::SubsystemConfig subsystem = core::SubsystemConfig::defaults();
  subsystem.cross_layer.uber_target = opt.uber_target;

  explore::SweepSpec sweep_spec;
  sweep_spec.framework = explore::FrameworkSpec::from(subsystem);
  sweep_spec.ages = log_space(opt.age_lo, opt.age_hi, opt.age_points);

  explore::SweepResult space = explore::sweep_space(sweep_spec, pool);
  if (opt.pareto_only) {
    explore::SweepResult front;
    // Front sizes vary per age, so the filtered rows are no longer an
    // ages x cells_per_age grid; 0 signals the irregular layout.
    front.cells_per_age = 0;
    for (const explore::SweepCell& cell : space.cells) {
      if (cell.pareto) front.cells.push_back(cell);
    }
    space = std::move(front);
  }

  std::vector<explore::WorkloadValidation> validations;
  if (opt.mc_replicas > 0) {
    const double mc_age =
        opt.mc_age >= 0.0 ? opt.mc_age : sweep_spec.ages.back();
    // One root stream per workload, derived serially from --seed so
    // adding a workload never reshuffles the others' replicas.
    Rng workload_seeder(opt.seed);
    for (const std::string& name : opt.workloads) {
      const std::uint64_t workload_seed = workload_seeder.next();
      const std::unique_ptr<sim::Workload> workload = make_workload(name);
      if (workload == nullptr) {
        std::cerr << "xlf_explore: unknown workload " << name << "\n";
        return 2;
      }
      explore::MonteCarloSpec mc;
      mc.subsystem = subsystem;
      mc.point = make_point(opt.point);
      mc.pe_cycles = mc_age;
      mc.workload = workload.get();
      mc.requests_per_replica = opt.mc_requests;
      mc.replicas = opt.mc_replicas;
      mc.seed = workload_seed;
      validations.push_back(explore::WorkloadValidation{
          workload->name(), mc_age, explore::run_monte_carlo(mc, pool)});
    }
  }

  std::string report;
  if (opt.format == "csv") {
    report = explore::sweep_csv(space);
    if (!validations.empty()) {
      report += "\n";
      report += explore::qos_csv(validations);
    }
  } else {
    report = "{\"sweep\":" + explore::sweep_json(space);
    report += ",\"qos\":" + explore::qos_json(validations);
    report += "}";
  }

  if (opt.out_path.empty()) {
    std::cout << report;
  } else {
    std::ofstream file(opt.out_path);
    if (!file) {
      std::cerr << "xlf_explore: cannot open " << opt.out_path << "\n";
      return 1;
    }
    file << report;
  }
  return 0;
}
