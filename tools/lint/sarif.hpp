// SARIF 2.1.0 emission for xlf_lint (`--sarif <file>`): the same
// findings the CLI prints, as a minimal static-analysis log the
// GitHub code-scanning upload action ingests. One run, one driver
// ("xlf_lint") carrying every rule from rule_infos(), one result per
// finding in the CLI's deterministic (file, line, rule) order.
#pragma once

#include <string>
#include <vector>

namespace xlf::lint {

struct Finding;

// The serialized SARIF document, ending in a newline. Deterministic:
// byte-identical output for identical findings.
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace xlf::lint
