// xlf_lint CLI — see tools/lint/lint.hpp for the rule set and the
// exit-code contract (0 clean, 1 findings, 2 usage/I/O error). All
// behavior lives in xlf::lint::run_cli so it is unit-testable.
#include <iostream>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return xlf::lint::run_cli(args, std::cout, std::cerr);
}
