#include "tools/lint/callgraph.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace xlf::lint {

bool never_a_function(const std::string& name) {
  static const std::set<std::string> kNames = {
      "if",       "for",      "while",   "switch",   "catch",
      "return",   "sizeof",   "alignof", "alignas",  "decltype",
      "typeid",   "throw",    "case",    "goto",     "operator",
      "and",      "or",       "not",     "defined",  "static_assert",
      "co_await", "co_return", "co_yield", "requires", "new",
      "delete",   "constexpr", "consteval"};
  return kNames.count(name) != 0;
}

std::size_t match_punct(const std::vector<Token>& code, std::size_t open,
                        const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i].kind != TokKind::kPunct) continue;
    if (code[i].text == open_text) {
      ++depth;
    } else if (code[i].text == close_text) {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

namespace {

// Walk the tokens after a candidate's closing ')' looking for the
// body '{'. Accepts qualifier identifiers (const, noexcept, ...),
// trailing return types, and ctor-init lists; anything that proves
// the candidate is a call or declaration (';', '=', '?', ...) rejects
// it. Returns the '{' index or npos.
std::size_t find_body_open(const std::vector<Token>& code,
                           std::size_t after_params) {
  bool seen_colon = false;
  std::size_t k = after_params;
  while (k < code.size()) {
    const Token& t = code[k];
    if (t.kind != TokKind::kPunct) {  // qualifiers, return types, names
      ++k;
      continue;
    }
    const std::string& s = t.text;
    if (s == "{") {
      // After a ctor-init colon, `name{args}` is a member init brace,
      // not the body; the body brace follows ')' or '}'.
      if (seen_colon && k > after_params &&
          code[k - 1].kind == TokKind::kIdentifier) {
        const std::size_t close = match_punct(code, k, "{", "}");
        if (close == std::string::npos) return std::string::npos;
        k = close + 1;
        continue;
      }
      return k;
    }
    if (s == ":") {
      seen_colon = true;
      ++k;
      continue;
    }
    if (s == "(") {
      // Parens here only make sense inside a ctor-init list or a
      // noexcept(...) clause; a second call's argument list rejects.
      const bool after_noexcept =
          k > after_params && code[k - 1].text == "noexcept";
      if (!seen_colon && !after_noexcept) return std::string::npos;
      const std::size_t close = match_punct(code, k, "(", ")");
      if (close == std::string::npos) return std::string::npos;
      k = close + 1;
      continue;
    }
    if (s == "::" || s == "<" || s == ">" || s == "," || s == "&" ||
        s == "*" || s == "->" || s == "...") {
      ++k;
      continue;
    }
    return std::string::npos;  // ';' '=' '?' '}' '.' — not a definition
  }
  return std::string::npos;
}

// One open lexical scope and the components it contributes (one name
// for a class, one or more for `namespace a::b`, none for an
// anonymous namespace).
struct Scope {
  std::vector<std::string> names;
  int depth = 0;  // brace depth just after the scope's '{'
  bool anon = false;
};

// Skip a `template <...>` parameter list (so `class T` inside it
// opens no scope). Angle matching is a plain counter — good enough
// for declaration heads, where `>>` closes two.
std::size_t skip_template_params(const std::vector<Token>& code,
                                 std::size_t at_template) {
  std::size_t k = at_template + 1;
  if (k >= code.size() || code[k].text != "<") return at_template + 1;
  int angle = 0;
  for (; k < code.size(); ++k) {
    if (code[k].text == "<") ++angle;
    if (code[k].text == ">" && --angle == 0) return k + 1;
  }
  return code.size();
}

}  // namespace

std::vector<Def> find_defs_scoped(const std::vector<Token>& code,
                                  std::size_t tu) {
  std::vector<Def> defs;
  std::vector<Scope> scopes;
  int depth = 0;
  const std::size_t n = code.size();
  std::size_t i = 0;
  while (i < n) {
    const Token& t = code[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") ++depth;
      if (t.text == "}") {
        --depth;
        while (!scopes.empty() && scopes.back().depth > depth) {
          scopes.pop_back();
        }
      }
      ++i;
      continue;
    }
    if (t.kind != TokKind::kIdentifier) {
      ++i;
      continue;
    }
    const std::string& s = t.text;

    if (s == "template") {
      i = skip_template_params(code, i);
      continue;
    }

    if (s == "namespace") {
      // `namespace a::b {`, `namespace {`, or an alias/using fragment.
      std::size_t k = i + 1;
      std::vector<std::string> names;
      while (k < n && code[k].kind == TokKind::kIdentifier) {
        names.push_back(code[k].text);
        if (k + 1 < n && code[k + 1].text == "::") {
          k += 2;
        } else {
          ++k;
          break;
        }
      }
      if (k < n && code[k].text == "{") {
        const bool anon = names.empty();
        scopes.push_back(Scope{std::move(names), depth + 1, anon});
        ++depth;  // consume the '{'
        i = k + 1;
        continue;
      }
      i = k;  // alias (`namespace x = y;`): no scope
      continue;
    }

    if (s == "class" || s == "struct" || s == "union") {
      // Opens a scope only when a braced body follows the name on this
      // declaration head (fwd decls, `struct X x;` vars do not).
      std::size_t k = i + 1;
      while (k < n && code[k].kind != TokKind::kIdentifier &&
             code[k].text != "{" && code[k].text != ";") {
        ++k;
      }
      if (k >= n || code[k].kind != TokKind::kIdentifier) {
        ++i;
        continue;
      }
      const std::string cname = code[k].text;
      int angle = 0;
      bool opens = false;
      std::size_t m = k + 1;
      for (; m < n; ++m) {
        if (code[m].kind != TokKind::kPunct) continue;
        const std::string& p = code[m].text;
        if (p == "<") ++angle;
        if (p == ">" && angle > 0) --angle;
        if (angle > 0) continue;
        if (p == "{") {
          opens = true;
          break;
        }
        // A declarator/parameter context: not a class body.
        if (p == ";" || p == "(" || p == ")" || p == "=" || p == ",") break;
      }
      if (opens) {
        scopes.push_back(Scope{{cname}, depth + 1, false});
        ++depth;
        i = m + 1;
        continue;
      }
      i = k + 1;
      continue;
    }

    if (s == "enum") {
      // Enumerator lists hold no definitions and their values may
      // contain arbitrary expressions; skip the whole block.
      std::size_t m = i + 1;
      while (m < n && code[m].text != "{" && code[m].text != ";") ++m;
      if (m < n && code[m].text == "{") {
        const std::size_t close = match_punct(code, m, "{", "}");
        if (close != std::string::npos) {
          i = close + 1;
          continue;
        }
      }
      i = m;
      continue;
    }

    const bool candidate =
        !never_a_function(s) && i + 1 < n && code[i + 1].text == "(" &&
        (i == 0 || (code[i - 1].text != "." && code[i - 1].text != "->"));
    if (!candidate) {
      ++i;
      continue;
    }
    const std::size_t params_close = match_punct(code, i + 1, "(", ")");
    if (params_close == std::string::npos) {
      ++i;
      continue;
    }
    const std::size_t open = find_body_open(code, params_close + 1);
    if (open == std::string::npos) {
      ++i;
      continue;
    }
    const std::size_t close = match_punct(code, open, "{", "}");
    if (close == std::string::npos) {
      ++i;
      continue;
    }
    Def def;
    def.name = s;
    def.name_line = t.line;
    def.open_line = code[open].line;
    def.open_tok = open;
    def.close_tok = close;
    def.tu = tu;
    // The written out-of-line qualifier chain, walked backwards over
    // `identifier ::` pairs (`void Ftl::flush(` → ["Ftl"]).
    std::vector<std::string> written;
    std::size_t q = i;
    while (q >= 2 && code[q - 1].text == "::" &&
           code[q - 2].kind == TokKind::kIdentifier) {
      written.insert(written.begin(), code[q - 2].text);
      q -= 2;
    }
    for (const Scope& sc : scopes) {
      if (sc.anon) def.tu_local = true;
      def.components.insert(def.components.end(), sc.names.begin(),
                            sc.names.end());
    }
    def.components.insert(def.components.end(), written.begin(),
                          written.end());
    def.components.push_back(def.name);
    for (std::size_t c = 0; c < def.components.size(); ++c) {
      if (c != 0) def.qual += "::";
      def.qual += def.components[c];
    }
    defs.push_back(std::move(def));
    i = close + 1;  // definitions do not nest; skip the body
  }
  return defs;
}

std::vector<Call> find_calls(const std::vector<Token>& code, const Def& def) {
  std::vector<Call> calls;
  for (std::size_t t = def.open_tok + 1; t < def.close_tok; ++t) {
    const Token& tok = code[t];
    if (tok.kind != TokKind::kIdentifier || never_a_function(tok.text)) {
      continue;
    }
    if (t + 1 >= def.close_tok || code[t + 1].text != "(") continue;
    Call call;
    call.name = tok.text;
    call.tok = t;
    call.line = tok.line;
    std::size_t q = t;
    while (q >= def.open_tok + 3 && code[q - 1].text == "::" &&
           code[q - 2].kind == TokKind::kIdentifier) {
      call.quals.insert(call.quals.begin(), code[q - 2].text);
      q -= 2;
    }
    calls.push_back(std::move(call));
  }
  return calls;
}

bool def_has_marker(const Def& def, const std::vector<Token>& comments,
                    const std::regex& re) {
  for (const Token& c : comments) {
    if (c.line < def.name_line - 3 || c.line > def.open_line) continue;
    if (std::regex_search(c.text, re)) return true;
  }
  return false;
}

std::vector<std::size_t> CallGraph::resolve(const Call& call,
                                            std::size_t from_tu) const {
  std::vector<std::size_t> out;
  const auto [begin, end] = by_name_.equal_range(call.name);
  for (auto it = begin; it != end; ++it) {
    const Def& def = defs_[it->second];
    if (def.tu_local && def.tu != from_tu) continue;
    if (!call.quals.empty()) {
      // The written chain + name must be a suffix of the def's
      // component list (`ftl::Ftl::flush` matches a `Ftl::flush` call).
      if (call.quals.size() + 1 > def.components.size()) continue;
      const std::size_t off =
          def.components.size() - (call.quals.size() + 1);
      bool match = true;
      for (std::size_t c = 0; c < call.quals.size(); ++c) {
        if (def.components[off + c] != call.quals[c]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
    }
    out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  return out;
}

CallGraph CallGraph::build(
    const std::vector<const std::vector<Token>*>& codes) {
  CallGraph graph;
  for (std::size_t tu = 0; tu < codes.size(); ++tu) {
    std::vector<Def> defs = find_defs_scoped(*codes[tu], tu);
    for (Def& def : defs) graph.defs_.push_back(std::move(def));
  }
  for (std::size_t d = 0; d < graph.defs_.size(); ++d) {
    graph.by_name_.emplace(graph.defs_[d].name, d);
  }
  graph.calls_.resize(graph.defs_.size());
  graph.out_.resize(graph.defs_.size());
  for (std::size_t d = 0; d < graph.defs_.size(); ++d) {
    const Def& def = graph.defs_[d];
    graph.calls_[d] = find_calls(*codes[def.tu], def);
    std::set<std::size_t> targets;
    for (const Call& call : graph.calls_[d]) {
      const std::vector<std::size_t> hits = graph.resolve(call, def.tu);
      targets.insert(hits.begin(), hits.end());
    }
    graph.out_[d].assign(targets.begin(), targets.end());
  }
  return graph;
}

CallGraph::Reach CallGraph::reach(const std::vector<std::size_t>& roots,
                                  const std::vector<char>* stop) const {
  Reach r;
  r.parent.assign(defs_.size(), npos);
  r.root.assign(defs_.size(), npos);
  std::deque<std::size_t> queue;
  for (const std::size_t d : roots) {
    if (stop != nullptr && (*stop)[d] != 0) continue;
    if (r.parent[d] != npos) continue;
    r.parent[d] = d;
    r.root[d] = d;
    queue.push_back(d);
  }
  while (!queue.empty()) {
    const std::size_t d = queue.front();
    queue.pop_front();
    for (const std::size_t callee : out_[d]) {
      if (r.parent[callee] != npos) continue;
      if (stop != nullptr && (*stop)[callee] != 0) continue;
      r.parent[callee] = d;
      r.root[callee] = r.root[d];
      queue.push_back(callee);
    }
  }
  return r;
}

}  // namespace xlf::lint
