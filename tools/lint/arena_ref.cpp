// arena-ref: the static half of PR 8's slot-lifetime hazard.
//
// The hot-path arenas (host submission slots, the in-flight
// Completion pool, the victim-index heaps) grow: a reference,
// pointer, or iterator bound to an element dangles the moment a
// growing call reallocates the backing store. PR 8 documents the
// safe pattern — copy the element out before anything that can grow
// the arena — in prose; this rule checks it.
//
// Contract: a declaration annotated `// xlf: arena(grows)` (same
// line, or alone on the line directly above; the declared name is
// the last identifier before the initializer/terminator on the
// declaration line) names an arena. Inside every definition, a
// binding of the forms
//
//   T& r = ...arena...;   T* p = ...arena...;           (reference)
//   auto it = arena.begin() / end() / data() / ...      (iterator)
//   for (auto& e : arena)                               (range-for)
//
// is a finding when, between the binding and the bound name's last
// use, the same arena takes a potentially-growing call (push_back /
// emplace_back / resize on the arena, or any try_issue / grow call —
// those grow arenas behind interfaces). Matching is token-level and
// name-level: any same-named member anywhere aliases the annotated
// arena, and a ref obtained through a helper function is invisible —
// over- and under-approximations documented in ARCHITECTURE §9. The
// escape hatch is `// xlf-lint: allow(arena-ref)` on the growing
// call's line.
#include <algorithm>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"
#include "tools/lint/rules.hpp"

namespace xlf::lint {
namespace {

const std::regex kArenaMarkRe(R"(\bxlf:\s*arena\(grows\))");

bool arena_grower(const std::string& s) {
  return s == "push_back" || s == "emplace_back" || s == "resize";
}
bool global_grower(const std::string& s) {
  return s == "try_issue" || s == "grow";
}
bool element_accessor(const std::string& s) {
  return s == "begin" || s == "end" || s == "rbegin" || s == "rend" ||
         s == "cbegin" || s == "cend" || s == "data";
}

struct ArenaDecl {
  std::string name;
  std::string where;  // "path:line" of the declaration, for messages
};

// Declared arena names across the whole lint set (an arena annotated
// in a header is referenced from the TUs that include it).
std::vector<ArenaDecl> collect_arenas(const std::vector<TuView>& tus) {
  std::vector<ArenaDecl> arenas;
  for (const TuView& tu : tus) {
    for (const Token& c : *tu.comments) {
      if (!std::regex_search(c.text, kArenaMarkRe)) continue;
      // The declaration line: the comment's own line when it carries
      // code, else the next line holding any structural token.
      int decl_line = 0;
      for (int l = c.line; l <= c.line + 3 && decl_line == 0; ++l) {
        for (const Token& t : *tu.code) {
          if (t.line == l) {
            decl_line = l;
            break;
          }
        }
        if (l == c.line && decl_line == l) {
          // Tokens on the comment's line that sit BEFORE the comment
          // are the declaration; after it there is nothing (a // xlf
          // marker runs to end of line).
          break;
        }
      }
      if (decl_line == 0) continue;
      std::string name;
      for (const Token& t : *tu.code) {
        if (t.line != decl_line) continue;
        if (t.kind == TokKind::kIdentifier) {
          name = t.text;
        } else if (t.kind == TokKind::kPunct &&
                   (t.text == ";" || t.text == "=" || t.text == "{" ||
                    t.text == "(")) {
          break;
        }
      }
      if (name.empty()) continue;
      arenas.push_back(ArenaDecl{
          name, *tu.path + ":" + std::to_string(decl_line)});
    }
  }
  return arenas;
}

struct Binding {
  std::string name;        // the bound reference/pointer/iterator
  std::size_t arena = 0;   // index into the arena list
  std::size_t end = 0;     // token index just past the binding stmt
  int line = 0;            // line of the binding, for the message
};

}  // namespace

void check_arena_ref(const std::vector<TuView>& tus, const AllowFn& allowed,
                     std::vector<Finding>& findings) {
  const std::vector<ArenaDecl> arenas = collect_arenas(tus);
  if (arenas.empty()) return;
  std::set<std::string> arena_names;
  for (const ArenaDecl& a : arenas) arena_names.insert(a.name);

  for (std::size_t ti = 0; ti < tus.size(); ++ti) {
    const TuView& tu = tus[ti];
    const std::vector<Token>& code = *tu.code;
    const std::vector<Def> defs = find_defs_scoped(code, ti);
    for (const Def& def : defs) {
      // Statement segmentation: boundaries at ';', '{', '}' outside
      // parentheses (a for-head's semicolons stay inside their stmt).
      std::vector<Binding> bindings;
      std::size_t stmt_begin = def.open_tok + 1;
      int paren = 0;
      for (std::size_t t = def.open_tok + 1; t <= def.close_tok; ++t) {
        const Token& tok = code[t];
        if (tok.kind == TokKind::kPunct) {
          if (tok.text == "(") ++paren;
          if (tok.text == ")" && paren > 0) --paren;
        }
        const bool boundary =
            t == def.close_tok ||
            (tok.kind == TokKind::kPunct && paren == 0 &&
             (tok.text == ";" || tok.text == "{" || tok.text == "}"));
        if (!boundary) continue;

        // Bindings inside [stmt_begin, t).
        for (std::size_t j = stmt_begin + 1; j + 1 < t; ++j) {
          if (code[j].kind != TokKind::kIdentifier) continue;
          const bool ref_decl =
              code[j - 1].kind == TokKind::kPunct &&
              (code[j - 1].text == "&" || code[j - 1].text == "*");
          const bool assigned = code[j + 1].text == "=";
          const bool range_for = code[j + 1].text == ":";
          if (!((ref_decl && (assigned || range_for)) || assigned)) continue;
          // The arena on the right-hand side / range expression.
          for (std::size_t r = j + 2; r < t; ++r) {
            if (code[r].kind != TokKind::kIdentifier ||
                arena_names.count(code[r].text) == 0) {
              continue;
            }
            // A plain `x = arena[i]` copy is safe; only reference/
            // pointer declarations — or iterators/raw storage from an
            // accessor call — bind into the arena's storage.
            bool binds = ref_decl && (assigned || range_for);
            if (!binds && r + 2 < t &&
                (code[r + 1].text == "." || code[r + 1].text == "->") &&
                element_accessor(code[r + 2].text)) {
              binds = true;
            }
            if (!binds) continue;
            std::size_t arena_index = 0;
            for (std::size_t a = 0; a < arenas.size(); ++a) {
              if (arenas[a].name == code[r].text) {
                arena_index = a;
                break;
              }
            }
            bindings.push_back(
                Binding{code[j].text, arena_index, t + 1, code[j].line});
            break;
          }
        }
        stmt_begin = t + 1;
      }

      for (const Binding& b : bindings) {
        const ArenaDecl& arena = arenas[b.arena];
        std::size_t last_use = 0;
        for (std::size_t t = b.end; t < def.close_tok; ++t) {
          if (code[t].kind == TokKind::kIdentifier && code[t].text == b.name) {
            last_use = t;
          }
        }
        if (last_use == 0) continue;  // never touched again
        for (std::size_t g = b.end; g < last_use; ++g) {
          if (code[g].kind != TokKind::kIdentifier) continue;
          if (g + 1 >= def.close_tok || code[g + 1].text != "(") continue;
          const bool on_arena =
              arena_grower(code[g].text) && g >= 2 &&
              (code[g - 1].text == "." || code[g - 1].text == "->") &&
              code[g - 2].text == arena.name;
          if (!on_arena && !global_grower(code[g].text)) continue;
          const std::size_t line_index =
              static_cast<std::size_t>(code[g].line) - 1;
          if (allowed(ti, line_index, "arena-ref")) continue;
          findings.push_back(Finding{
              *tu.path, code[g].line, "arena-ref",
              "'" + b.name + "' (bound into arena '" + arena.name +
                  "', declared " + arena.where + ", at line " +
                  std::to_string(b.line) + ") is used after '" +
                  code[g].text +
                  "()' may grow the arena: growth reallocates the backing "
                  "store and dangles the binding; copy the element out "
                  "before the growing call, or justify with // xlf-lint: "
                  "allow(arena-ref)"});
          break;  // one finding per binding: the first growing call
        }
      }
    }
  }
}

}  // namespace xlf::lint
