// xlf_sym_audit CLI — the link-time layering audit; see
// tools/lint/sym_audit.hpp for the contract (0 clean, 1 violations,
// 2 usage/I/O error). All behavior lives in run_sym_audit_cli so it
// is unit-testable.
#include <iostream>
#include <string>
#include <vector>

#include "tools/lint/sym_audit.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return xlf::lint::run_sym_audit_cli(args, std::cout, std::cerr);
}
