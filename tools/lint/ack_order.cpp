// ack-order: the static half of PR 6's crash-consistency invariant.
//
// The runtime contract: a completion must never be acknowledged to
// the host while the NAND mutation it reports is not yet paired with
// its durable record (OOB write / DurableMeta journal append) — a
// power cut in that window would un-happen an acknowledged write.
// The torture matrix proves the shipped paths; this rule keeps NEW
// paths honest: starting from every `// xlf: ack` definition (the
// completion-posting sites), walk the cross-TU call graph, STOP at
// `// xlf: durable` definitions (commit sites whose interiors the
// kill-window tests own), and report any NAND-mutation call token —
// program_page, erase_block, write_page_meta — in the remaining
// closure. A mutation behind a durable node is fine; a mutation an
// ack site can reach around every durable node is a finding.
//
// Soundness caveats (documented in ARCHITECTURE §9): resolution is
// name-level, so the closure over-approximates through same-named
// defs; function pointers, virtual calls into externally-defined
// code, and macro-generated bodies are invisible; and `durable` is a
// trust boundary — annotating a function that does not actually
// commit its mutations durably silences the rule for everything
// behind it.
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"
#include "tools/lint/rules.hpp"

namespace xlf::lint {
namespace {

const std::regex kAckMarkRe(R"(\bxlf:\s*ack\b)");
const std::regex kDurableMarkRe(R"(\bxlf:\s*durable\b)");

bool mutation_name(const std::string& s) {
  return s == "program_page" || s == "erase_block" || s == "write_page_meta";
}

// The ack -> ... -> def call chain, for the message.
std::string chain_of(const CallGraph& graph, const CallGraph::Reach& reach,
                     std::size_t def) {
  std::vector<std::size_t> path{def};
  while (reach.parent[path.back()] != path.back()) {
    path.push_back(reach.parent[path.back()]);
  }
  std::string out;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += graph.defs()[*it].qual;
  }
  return out;
}

}  // namespace

void check_ack_order(const std::vector<TuView>& tus, const CallGraph& graph,
                     const AllowFn& allowed, std::vector<Finding>& findings) {
  const std::vector<Def>& defs = graph.defs();
  std::vector<std::size_t> acks;
  std::vector<char> durable(defs.size(), 0);
  for (std::size_t d = 0; d < defs.size(); ++d) {
    const std::vector<Token>& comments = *tus[defs[d].tu].comments;
    if (def_has_marker(defs[d], comments, kDurableMarkRe)) durable[d] = 1;
    if (def_has_marker(defs[d], comments, kAckMarkRe)) acks.push_back(d);
  }
  if (acks.empty()) return;

  const CallGraph::Reach reach = graph.reach(acks, &durable);
  for (std::size_t d = 0; d < defs.size(); ++d) {
    if (reach.parent[d] == CallGraph::npos) continue;
    const Def& def = defs[d];
    const TuView& tu = tus[def.tu];
    for (std::size_t t = def.open_tok + 1; t < def.close_tok; ++t) {
      const Token& tok = (*tu.code)[t];
      if (tok.kind != TokKind::kIdentifier || !mutation_name(tok.text)) {
        continue;
      }
      if (t + 1 >= def.close_tok || (*tu.code)[t + 1].text != "(") continue;
      const std::size_t line_index = static_cast<std::size_t>(tok.line) - 1;
      if (allowed(def.tu, line_index, "ack-order")) continue;
      findings.push_back(Finding{
          *tu.path, tok.line, "ack-order",
          "NAND mutation '" + tok.text + "()' is reachable from ack site '" +
              graph.defs()[reach.root[d]].qual +
              "' with no durable commit on the path (" +
              chain_of(graph, reach, d) +
              "): a power cut here un-happens an acknowledged operation; "
              "route the mutation through a '// xlf: durable' commit "
              "function, or justify with // xlf-lint: allow(ack-order)"});
    }
  }
}

}  // namespace xlf::lint
