// xlf_sym_audit — the link-time half of the layering rule.
//
// xlf_lint checks the DAG at the #include level, but a TU can still
// reach up the stack without an include: a forward declaration plus a
// call compiles fine and only the linker sees the edge. This audit
// closes that hole. It runs `nm` over the built libxlf_<layer>.a
// archives, collects each archive's defined and undefined symbols,
// and checks every undefined symbol that some OTHER xlf layer defines
// against the referencing layer's allowed closure from
// tools/lint/layers.txt. A reference whose only definers are outside
// the closure is a violation — the CLI names the layer, the demangled
// symbol, and the owning layer(s).
//
// Symbols nothing in the xlf tree defines (libstdc++, libc, gtest)
// are ignored; a symbol defined by several layers is fine as long as
// at least one of them is in the closure.
#pragma once

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"

namespace xlf::lint {

// One archive's linker-visible surface.
struct ArchiveSyms {
  std::string layer;                 // "ftl" for libxlf_ftl.a
  std::string path;                  // as given / discovered
  std::set<std::string> defined;     // global definitions (T, D, B, W, ...)
  std::set<std::string> undefined;   // U references
};

struct SymViolation {
  std::string layer;               // the referencing layer
  std::string symbol;              // mangled, as nm prints it
  std::string demangled;           // "" when demangling is unavailable
  std::set<std::string> owners;    // layers defining the symbol
};

// Parse `nm` output into `out`. Accepts both POSIX (-P: "name type
// value size") and BSD ("value type name" / "       U name") shapes;
// object-file headers ("foo.o:") and blank lines are skipped. A
// symbol both referenced and defined across an archive's members
// counts as defined (the archive satisfies itself).
void parse_nm(const std::string& nm_output, ArchiveSyms& out);

// Cross-check every archive's undefined symbols against the layer
// DAG. Archives whose layer is not declared in the graph are the
// caller's job to filter. Violations are sorted by (layer, symbol).
std::vector<SymViolation> audit(const std::vector<ArchiveSyms>& archives,
                                const LayerGraph& graph);

// "path/to/libxlf_ftl.a" -> "ftl"; "" when the basename does not
// match libxlf_<layer>.a.
std::string layer_of_archive(const std::string& path);

// Itanium-ABI demangle via <cxxabi.h>; returns "" on failure.
std::string demangle(const std::string& symbol);

// "libxlf_<layer>.a: [sym-audit] layer '<l>' references '<sym>' ..."
std::string format_violation(const SymViolation& v);

// CLI: xlf_sym_audit [--layers FILE] [--nm TOOL] PATH...
// PATH is an archive or a directory searched recursively for
// libxlf_<layer>.a files (undeclared layers are skipped, so helper
// archives like libxlf_lint_lib.a never trip the audit). Exit codes
// match xlf_lint: 0 clean, 1 violations, 2 usage or I/O error.
int run_sym_audit_cli(const std::vector<std::string>& args, std::ostream& out,
                      std::ostream& err);

}  // namespace xlf::lint
