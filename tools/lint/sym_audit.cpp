#include "tools/lint/sym_audit.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

namespace xlf::lint {
namespace {

bool is_type_char(const std::string& s) {
  return s.size() == 1 && std::isalpha(static_cast<unsigned char>(s[0])) != 0;
}

// A definition that can satisfy a cross-archive reference: any global
// (uppercase) type, or a weak/unique local-case one. Lowercase types
// (t, d, b) are archive-local and never resolve another archive's U.
bool defines(char type) {
  if (type == 'U') return false;
  return std::isupper(static_cast<unsigned char>(type)) != 0 || type == 'w' ||
         type == 'v' || type == 'u';
}

// Quote a path for the popen command line. Paths with single quotes
// are rejected rather than escaped — none exist in a build tree, and
// refusing is safer than composing shell metacharacters.
std::string shell_quote(const std::string& path) {
  if (path.find('\'') != std::string::npos) {
    throw std::runtime_error("path contains a quote: " + path);
  }
  return "'" + path + "'";
}

std::string run_command(const std::string& command) {
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) {
    throw std::runtime_error("cannot run: " + command);
  }
  std::string output;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    output.append(buffer, got);
  }
  const int status = ::pclose(pipe);
  if (status != 0) {
    throw std::runtime_error("command failed (" + std::to_string(status) +
                             "): " + command);
  }
  return output;
}

}  // namespace

void parse_nm(const std::string& nm_output, ArchiveSyms& out) {
  std::istringstream stream(nm_output);
  std::string line;
  while (std::getline(stream, line)) {
    std::istringstream fields(line);
    std::vector<std::string> tok;
    std::string t;
    while (fields >> t) tok.push_back(std::move(t));
    if (tok.empty()) continue;
    if (tok.size() == 1) continue;  // "member.o:" header or noise
    std::string name;
    char type = '\0';
    // BSD defined ("value type name") and POSIX -P ("name type value
    // size") both put the type second; the hex value column tells them
    // apart (mangled names are never pure hex).
    const bool hex_first =
        tok[0].find_first_not_of("0123456789abcdefABCDEF") ==
        std::string::npos;
    if (tok.size() >= 3 && hex_first && is_type_char(tok[1])) {
      name = tok[2];  // BSD defined: "value type name"
      type = tok[1][0];
    } else if (is_type_char(tok[1])) {
      name = tok[0];  // POSIX -P: "name type [value [size]]"
      type = tok[1][0];
    } else if (is_type_char(tok[0]) && tok.size() == 2) {
      name = tok[1];  // BSD undefined: "U name"
      type = tok[0][0];
    } else {
      continue;
    }
    if (type == 'U') {
      out.undefined.insert(name);
    } else if (defines(type)) {
      out.defined.insert(name);
    }
  }
}

std::vector<SymViolation> audit(const std::vector<ArchiveSyms>& archives,
                                const LayerGraph& graph) {
  std::map<std::string, std::set<std::string>> owners;
  for (const ArchiveSyms& a : archives) {
    for (const std::string& sym : a.defined) owners[sym].insert(a.layer);
  }
  std::vector<SymViolation> violations;
  for (const ArchiveSyms& a : archives) {
    const std::set<std::string>& allowed = graph.allowed(a.layer);
    for (const std::string& sym : a.undefined) {
      if (a.defined.count(sym) != 0) continue;  // satisfied in-archive
      const auto it = owners.find(sym);
      if (it == owners.end()) continue;  // external: libc++, gtest, ...
      std::set<std::string> definers = it->second;
      definers.erase(a.layer);
      if (definers.empty()) continue;
      const bool reachable =
          std::any_of(definers.begin(), definers.end(),
                      [&](const std::string& l) { return allowed.count(l); });
      if (reachable) continue;
      violations.push_back(SymViolation{a.layer, sym, demangle(sym),
                                        std::move(definers)});
    }
  }
  std::sort(violations.begin(), violations.end(),
            [](const SymViolation& x, const SymViolation& y) {
              if (x.layer != y.layer) return x.layer < y.layer;
              return x.symbol < y.symbol;
            });
  return violations;
}

std::string layer_of_archive(const std::string& path) {
  const std::string name = std::filesystem::path(path).filename().string();
  const std::string prefix = "libxlf_";
  const std::string suffix = ".a";
  if (name.size() <= prefix.size() + suffix.size()) return "";
  if (name.rfind(prefix, 0) != 0) return "";
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return "";
  }
  return name.substr(prefix.size(),
                     name.size() - prefix.size() - suffix.size());
}

std::string demangle(const std::string& symbol) {
#if defined(__GNUG__)
  int status = 0;
  char* text =
      abi::__cxa_demangle(symbol.c_str(), nullptr, nullptr, &status);
  if (status != 0 || text == nullptr) {
    std::free(text);
    return "";
  }
  std::string result(text);
  std::free(text);
  return result;
#else
  (void)symbol;
  return "";
#endif
}

std::string format_violation(const SymViolation& v) {
  std::string owners;
  for (const std::string& o : v.owners) {
    if (!owners.empty()) owners += ", ";
    owners += "'" + o + "'";
  }
  const std::string shown = v.demangled.empty() ? v.symbol : v.demangled;
  return "libxlf_" + v.layer + ".a: [sym-audit] layer '" + v.layer +
         "' references '" + shown + "' defined only in layer " + owners +
         ", outside its dependency closure (tools/lint/layers.txt); add "
         "the dependency there and in CMake, or move the code to a layer "
         "both sides may use";
}

int run_sym_audit_cli(const std::vector<std::string>& args, std::ostream& out,
                      std::ostream& err) {
  std::string layers_path = "tools/lint/layers.txt";
  std::string nm_tool = "nm";
  std::vector<std::string> targets;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      out << "usage: xlf_sym_audit [--layers FILE] [--nm TOOL] PATH...\n"
             "  --layers FILE   layer DAG (default tools/lint/layers.txt)\n"
             "  --nm TOOL       nm binary to run (default nm)\n"
             "  PATH            libxlf_<layer>.a archives, or directories\n"
             "                  searched recursively for them (typically\n"
             "                  the CMake build directory)\n"
             "exit codes: 0 clean, 1 violations, 2 usage or I/O error\n";
      return 0;
    }
    if (arg == "--layers" || arg == "--nm") {
      if (i + 1 >= args.size()) {
        err << "xlf_sym_audit: missing value for " << arg << "\n";
        return 2;
      }
      (arg == "--layers" ? layers_path : nm_tool) = args[++i];
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      err << "xlf_sym_audit: unknown flag '" << arg << "' (try --help)\n";
      return 2;
    }
    targets.push_back(arg);
  }
  if (targets.empty()) {
    err << "xlf_sym_audit: no paths given (try `xlf_sym_audit build`)\n";
    return 2;
  }
  try {
    const LayerGraph graph = LayerGraph::parse_file(layers_path);
    namespace fs = std::filesystem;
    std::vector<std::string> archive_paths;
    for (const std::string& target : targets) {
      if (!fs::exists(target)) {
        throw std::runtime_error("no such file or directory: " + target);
      }
      if (fs::is_directory(target)) {
        for (const auto& entry : fs::recursive_directory_iterator(target)) {
          if (!entry.is_regular_file()) continue;
          const std::string path = entry.path().generic_string();
          const std::string layer = layer_of_archive(path);
          // Helper archives (libxlf_lint_lib.a) are not layers; skip.
          if (!layer.empty() && graph.has_layer(layer)) {
            archive_paths.push_back(path);
          }
        }
      } else {
        const std::string layer = layer_of_archive(target);
        if (layer.empty() || !graph.has_layer(layer)) {
          throw std::runtime_error(
              "not a libxlf_<layer>.a archive of a declared layer: " +
              target);
        }
        archive_paths.push_back(target);
      }
    }
    std::sort(archive_paths.begin(), archive_paths.end());
    archive_paths.erase(
        std::unique(archive_paths.begin(), archive_paths.end()),
        archive_paths.end());
    if (archive_paths.empty()) {
      err << "xlf_sym_audit: no libxlf_<layer>.a archives found under the "
             "given paths (build first?)\n";
      return 2;
    }
    std::vector<ArchiveSyms> archives;
    for (const std::string& path : archive_paths) {
      ArchiveSyms syms;
      syms.layer = layer_of_archive(path);
      syms.path = path;
      parse_nm(run_command(nm_tool + " -P " + shell_quote(path) +
                           " 2>/dev/null"),
               syms);
      archives.push_back(std::move(syms));
    }
    const std::vector<SymViolation> violations = audit(archives, graph);
    for (const SymViolation& v : violations) {
      out << format_violation(v) << "\n";
    }
    err << "xlf_sym_audit: " << archives.size() << " archive"
        << (archives.size() == 1 ? "" : "s") << ", " << violations.size()
        << " violation" << (violations.size() == 1 ? "" : "s") << "\n";
    return violations.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    err << "xlf_sym_audit: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace xlf::lint
