// Cross-TU rule entry points built on the call graph
// (tools/lint/callgraph.hpp): the crash-ordering audit (ack-order)
// and the arena element-lifetime rule (arena-ref). Each runs over the
// whole lint_files() set at once; lint.cpp wires them in after the
// per-TU passes and hands them the allow-comment predicate so the
// escape hatch (and its usage tracking) stays in one place.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "tools/lint/callgraph.hpp"
#include "tools/lint/lexer.hpp"

namespace xlf::lint {

struct Finding;

// Read-only view of one analyzed TU, indexed like the CallGraph's
// `tu` field.
struct TuView {
  const std::string* path = nullptr;
  const LexedFile* lx = nullptr;
  const std::vector<Token>* code = nullptr;      // structural tokens
  const std::vector<Token>* comments = nullptr;  // for marker scans
};

// allowed(tu, line_index, rule): the `// xlf-lint: allow(<rule>)`
// check, 0-based line. Provided by lint.cpp so suppressions count as
// "used" for --report-unused-allows.
using AllowFn =
    std::function<bool(std::size_t, std::size_t, const std::string&)>;

// ack-order: no path from a `// xlf: ack` definition may reach a NAND
// mutation token (program_page / erase_block / write_page_meta)
// without passing through a `// xlf: durable` definition. See
// ack_order.cpp for the exact contract.
void check_ack_order(const std::vector<TuView>& tus, const CallGraph& graph,
                     const AllowFn& allowed, std::vector<Finding>& findings);

// arena-ref: a reference/pointer/iterator bound into a declaration
// annotated `// xlf: arena(grows)` must not be used after a
// potentially-growing call (try_issue / push_back / emplace_back /
// resize / grow) on that arena. See arena_ref.cpp.
void check_arena_ref(const std::vector<TuView>& tus, const AllowFn& allowed,
                     std::vector<Finding>& findings);

}  // namespace xlf::lint
