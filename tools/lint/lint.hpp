// xlf_lint — in-repo static analyzer for the repo's machine-checkable
// invariants. Eight rule families:
//
//  * layering       — the include-layer DAG. src/<layer>/ may include
//                     itself plus the transitive closure of its direct
//                     dependencies as declared in tools/lint/layers.txt
//                     (cross-checked against the CMake link edges by a
//                     ctest, so the two can never drift; the link-time
//                     half of the check is xlf_sym_audit, see
//                     tools/lint/sym_audit.hpp).
//  * determinism    — ban-list of nondeterminism sources: ambient
//                     randomness (std::random_device, rand), wall-clock
//                     time (time(), C clocks, std::chrono clocks),
//                     unordered-container iteration in report/CSV/JSON
//                     emitter TUs, and pointer-value ordering in
//                     comparators. Every sweep/spec/torture cell must
//                     be byte-identical for any --threads; these are
//                     the constructs that break that contract silently.
//  * raw-assert     — assertion hygiene: raw assert() vanishes under
//                     NDEBUG; contracts must use XLF_EXPECT /
//                     XLF_EXPECT_MSG / XLF_ENSURE (src/util/expect.hpp)
//                     so they hold in Release builds too.
//  * hot-alloc      — allocation-freedom on hot paths. A function
//                     annotated `// xlf: hot` on its signature, and
//                     everything it reaches through the whole-program
//                     cross-TU call graph (tools/lint/callgraph.hpp),
//                     must not allocate: new, malloc,
//                     make_unique/make_shared, vector growth
//                     (push_back/emplace_back/resize/reserve),
//                     std::function and std::string construction are
//                     findings. Documented arena-growth sites escape
//                     with `// xlf-lint: allow(hot-alloc)`.
//  * lock-order     — lock discipline: nested mutex acquisition,
//                     inconsistent cross-TU acquisition order for the
//                     same mutex pair, and any new mutex declared in
//                     src/nand or src/sim (the replayed layers are
//                     lock-free by design — determinism comes from
//                     event ordering, not locking) are findings.
//  * ack-order      — crash-ack ordering: no path from a `// xlf: ack`
//                     completion site may reach a NAND mutation
//                     (program_page / erase_block / write_page_meta)
//                     on the call graph without passing a
//                     `// xlf: durable` commit function. The static
//                     half of the PR 6 durability contract; see
//                     tools/lint/ack_order.cpp.
//  * arena-ref      — arena element lifetime: a reference, pointer, or
//                     iterator bound into a declaration annotated
//                     `// xlf: arena(grows)` must not be used across a
//                     potentially-growing call (try_issue / push_back /
//                     emplace_back / resize / grow) on that arena. The
//                     static half of the PR 8 slot-lifetime hazard; see
//                     tools/lint/arena_ref.cpp.
//  * unused-allow   — stale-suppression audit, opt-in via
//                     --report-unused-allows: every allow() comment
//                     must have suppressed at least one finding in the
//                     run, and every listed name must be a real rule.
//
// Escape hatch: a `// xlf-lint: allow(<rule>)` comment on the same
// line (or alone on the line directly above) suppresses that one rule
// at that one site. There is no file- or tree-wide suppression on
// purpose.
//
// The line-pattern rules run over the stripped code view produced by
// the token lexer (tools/lint/lexer.hpp): a banned construct in a
// comment, a string literal, a raw string spanning lines, or behind a
// backslash continuation is never a finding. The structural rules
// (hot-alloc, lock-order) run over the token stream itself.
#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace xlf::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

// All rules, in the order --list-rules prints them.
const std::vector<RuleInfo>& rule_infos();
bool is_rule_name(const std::string& name);

// "file:line: [rule] message" — the one-line form the CLI prints.
std::string format_finding(const Finding& finding);

// The layer DAG from layers.txt. parse() throws std::runtime_error on
// syntax errors, references to undeclared layers, or cycles.
class LayerGraph {
 public:
  static LayerGraph parse(const std::string& text);
  static LayerGraph parse_file(const std::string& path);

  // Layers a file under src/<layer>/ may include from: the layer
  // itself plus the transitive closure of its declared dependencies.
  const std::set<std::string>& allowed(const std::string& layer) const;
  bool has_layer(const std::string& layer) const;

  // Direct edges exactly as declared, for the CMake cross-check.
  const std::map<std::string, std::vector<std::string>>& direct() const {
    return direct_;
  }

 private:
  std::map<std::string, std::vector<std::string>> direct_;
  std::map<std::string, std::set<std::string>> allowed_;
};

// Layer a path belongs to ("" when the path has no src/<layer>/
// component — such files skip the layering rule).
std::string layer_of(const std::string& path);

// True for TUs whose emitted bytes are report artifacts (basename
// starts with "report" or contains "_csv"/"_json"): the unordered-
// container rule applies only there.
bool is_emitter_tu(const std::string& path);

// Lint one file's contents. `path` provides the layer (layering rule)
// and the TU kind (emitter rule) and is echoed in findings.
std::vector<Finding> lint_file(const std::string& path,
                               const std::string& contents,
                               const LayerGraph& graph);

// Lint a set of files as one analysis scope. Per-file rules behave
// exactly as lint_file; the cross-TU analyses — the whole-program call
// graph behind hot-alloc and ack-order, the lock-order inversion
// check, arena-ref's annotation set — only exist at this granularity.
// Findings are globally sorted by (file, line, rule position).
struct FileInput {
  std::string path;
  std::string contents;
};

struct LintOptions {
  // Report `// xlf-lint: allow(...)` comments that suppressed nothing
  // in this run, or that name unknown rules (rule: unused-allow).
  bool report_unused_allows = false;
};

std::vector<Finding> lint_files(const std::vector<FileInput>& files,
                                const LayerGraph& graph);
std::vector<Finding> lint_files(const std::vector<FileInput>& files,
                                const LayerGraph& graph,
                                const LintOptions& options);

// Recursively lint every .hpp/.cpp under `root` in sorted path order.
// Throws std::runtime_error if root does not exist.
std::vector<Finding> lint_tree(const std::string& root,
                               const LayerGraph& graph);
std::vector<Finding> lint_tree(const std::string& root,
                               const LayerGraph& graph,
                               const LintOptions& options);

// Full CLI (main() is a one-liner around this so the exit-code
// contract is unit-testable). Exit codes: 0 = clean, 1 = findings,
// 2 = usage or I/O error.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace xlf::lint
