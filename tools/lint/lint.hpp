// xlf_lint — in-repo static analyzer for the repo's machine-checkable
// invariants. Three rule families:
//
//  * layering       — the include-layer DAG. src/<layer>/ may include
//                     itself plus the transitive closure of its direct
//                     dependencies as declared in tools/lint/layers.txt
//                     (cross-checked against the CMake link edges by a
//                     ctest, so the two can never drift).
//  * determinism    — ban-list of nondeterminism sources: ambient
//                     randomness (std::random_device, rand), wall-clock
//                     time (time(), C clocks, std::chrono clocks),
//                     unordered-container iteration in report/CSV/JSON
//                     emitter TUs, and pointer-value ordering in
//                     comparators. Every sweep/spec/torture cell must
//                     be byte-identical for any --threads; these are
//                     the constructs that break that contract silently.
//  * raw-assert     — assertion hygiene: raw assert() vanishes under
//                     NDEBUG; contracts must use XLF_EXPECT /
//                     XLF_EXPECT_MSG / XLF_ENSURE (src/util/expect.hpp)
//                     so they hold in Release builds too.
//
// Escape hatch: a `// xlf-lint: allow(<rule>)` comment on the same
// line (or alone on the line directly above) suppresses that one rule
// at that one site. There is no file- or tree-wide suppression on
// purpose.
//
// The analysis is line-based over a comment- and string-stripped view
// of each file: a banned construct mentioned in a comment or a string
// literal is not a finding.
#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace xlf::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

// All rules, in the order --list-rules prints them.
const std::vector<RuleInfo>& rule_infos();
bool is_rule_name(const std::string& name);

// "file:line: [rule] message" — the one-line form the CLI prints.
std::string format_finding(const Finding& finding);

// The layer DAG from layers.txt. parse() throws std::runtime_error on
// syntax errors, references to undeclared layers, or cycles.
class LayerGraph {
 public:
  static LayerGraph parse(const std::string& text);
  static LayerGraph parse_file(const std::string& path);

  // Layers a file under src/<layer>/ may include from: the layer
  // itself plus the transitive closure of its declared dependencies.
  const std::set<std::string>& allowed(const std::string& layer) const;
  bool has_layer(const std::string& layer) const;

  // Direct edges exactly as declared, for the CMake cross-check.
  const std::map<std::string, std::vector<std::string>>& direct() const {
    return direct_;
  }

 private:
  std::map<std::string, std::vector<std::string>> direct_;
  std::map<std::string, std::set<std::string>> allowed_;
};

// Layer a path belongs to ("" when the path has no src/<layer>/
// component — such files skip the layering rule).
std::string layer_of(const std::string& path);

// True for TUs whose emitted bytes are report artifacts (basename
// starts with "report" or contains "_csv"/"_json"): the unordered-
// container rule applies only there.
bool is_emitter_tu(const std::string& path);

// Lint one file's contents. `path` provides the layer (layering rule)
// and the TU kind (emitter rule) and is echoed in findings.
std::vector<Finding> lint_file(const std::string& path,
                               const std::string& contents,
                               const LayerGraph& graph);

// Recursively lint every .hpp/.cpp under `root` in sorted path order.
// Throws std::runtime_error if root does not exist.
std::vector<Finding> lint_tree(const std::string& root,
                               const LayerGraph& graph);

// Full CLI (main() is a one-liner around this so the exit-code
// contract is unit-testable). Exit codes: 0 = clean, 1 = findings,
// 2 = usage or I/O error.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace xlf::lint
