// Unit suite for xlf_lint: rule hits, the allow-comment escape hatch,
// DAG parsing/violations, and the CLI exit-code contract (0 clean,
// 1 findings, 2 usage/I-O error) — the contract CI leans on.
#include "tools/lint/lint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace xlf::lint {
namespace {

namespace fs = std::filesystem;

const char* kMiniDag =
    "util:\n"
    "gf: util\n"
    "bch: gf util\n"
    "ftl: util\n";

LayerGraph mini_graph() { return LayerGraph::parse(kMiniDag); }

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

TEST(Rules, ListCoversEveryRuleFamily) {
  const std::vector<RuleInfo>& rules = rule_infos();
  ASSERT_EQ(rules.size(), 6u);
  for (const char* name :
       {"layering", "no-ambient-random", "no-wall-clock",
        "no-unordered-emit", "no-ptr-order", "raw-assert"}) {
    EXPECT_TRUE(is_rule_name(name)) << name;
  }
  EXPECT_FALSE(is_rule_name("no-such-rule"));
}

TEST(LayerGraph, ClosureIsTransitiveAndIncludesSelf) {
  const LayerGraph graph = mini_graph();
  const std::set<std::string>& bch = graph.allowed("bch");
  EXPECT_EQ(bch, (std::set<std::string>{"bch", "gf", "util"}));
  EXPECT_EQ(graph.allowed("util"), std::set<std::string>{"util"});
  EXPECT_FALSE(graph.has_layer("explore"));
}

TEST(LayerGraph, RejectsCycleUndeclaredDepAndDuplicate) {
  EXPECT_THROW(LayerGraph::parse("a: b\nb: a\n"), std::runtime_error);
  EXPECT_THROW(LayerGraph::parse("a: ghost\n"), std::runtime_error);
  EXPECT_THROW(LayerGraph::parse("a:\na: \n"), std::runtime_error);
  EXPECT_THROW(LayerGraph::parse("just-a-layer-no-colon\n"),
               std::runtime_error);
}

TEST(Layering, UpwardIncludeIsAViolationDownwardIsNot) {
  const LayerGraph graph = mini_graph();
  const auto up = lint_file("src/util/widget.hpp",
                            "#include \"src/ftl/ftl.hpp\"\n", graph);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].rule, "layering");
  EXPECT_EQ(up[0].line, 1);
  EXPECT_NE(up[0].message.find("layers.txt"), std::string::npos);

  const auto down = lint_file(
      "src/bch/decoder.cpp",
      "#include \"src/gf/gf2m.hpp\"\n#include \"src/util/rng.hpp\"\n"
      "#include \"src/bch/decoder.hpp\"\n",
      graph);
  EXPECT_TRUE(down.empty());
}

TEST(Layering, CrossIncludeBetweenSiblingsIsAViolation) {
  const LayerGraph graph = mini_graph();
  // gf and ftl are siblings off util; neither may see the other.
  const auto cross =
      lint_file("src/ftl/x.cpp", "#include \"src/gf/gf2m.hpp\"\n", graph);
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0].rule, "layering");
}

TEST(Layering, FilesOutsideSrcLayersAreExempt) {
  const LayerGraph graph = mini_graph();
  const auto findings = lint_file(
      "tools/xlf_explore.cpp", "#include \"src/ftl/ftl.hpp\"\n", graph);
  EXPECT_TRUE(findings.empty());
}

TEST(Determinism, BanListHitsEachPattern) {
  const LayerGraph graph = mini_graph();
  const auto findings = lint_file("src/util/bad.cpp",
                                  "std::random_device rd;\n"
                                  "int r = rand();\n"
                                  "auto t0 = std::chrono::steady_clock::now();\n"
                                  "time_t t = time(nullptr);\n",
                                  graph);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"no-ambient-random", "no-ambient-random",
                                      "no-wall-clock", "no-wall-clock"}));
}

TEST(Determinism, CommentsAndStringsAreNotFindings) {
  const LayerGraph graph = mini_graph();
  const auto findings =
      lint_file("src/util/ok.cpp",
                "// program time(), rand() and steady_clock in a comment\n"
                "/* time( in a block comment */\n"
                "const char* msg = \"wall time() of rand()\";\n"
                "double sim_time(int events);  // not the C time()\n",
                graph);
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(Determinism, UnorderedContainersOnlyFlaggedInEmitterTus) {
  const LayerGraph graph = mini_graph();
  const std::string code = "std::unordered_map<int, int> index;\n";
  EXPECT_TRUE(lint_file("src/ftl/mapping.cpp", code, graph).empty());
  EXPECT_TRUE(is_emitter_tu("src/explore/report.cpp"));
  EXPECT_TRUE(is_emitter_tu("src/explore/ftl_csv.cpp"));
  EXPECT_FALSE(is_emitter_tu("src/util/json.cpp"));
  const auto report = lint_file("src/explore/report.cpp", code, graph);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].rule, "no-unordered-emit");
}

TEST(Determinism, PointerOrderingIsFlagged) {
  const LayerGraph graph = mini_graph();
  const auto findings = lint_file(
      "src/ftl/bad.cpp",
      "std::set<Block*, std::less<Block*>> by_addr;\n"
      "auto key = reinterpret_cast<std::uintptr_t>(block);\n",
      graph);
  EXPECT_EQ(rules_of(findings), (std::vector<std::string>{"no-ptr-order",
                                                          "no-ptr-order"}));
}

TEST(AssertHygiene, RawAssertFlaggedStaticAndGtestAssertsNot) {
  const LayerGraph graph = mini_graph();
  const auto raw =
      lint_file("src/nand/cell.cpp", "  assert(level < 4);\n", graph);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].rule, "raw-assert");
  EXPECT_NE(raw[0].message.find("XLF_EXPECT"), std::string::npos);

  const auto clean = lint_file("src/nand/cell.cpp",
                               "static_assert(sizeof(int) == 4);\n"
                               "ASSERT_EQ(a, b);\n"
                               "XLF_EXPECT(level < 4);\n",
                               graph);
  EXPECT_TRUE(clean.empty());
}

TEST(AllowComment, SameLineAndPrecedingLineSuppressWrongRuleDoesNot) {
  const LayerGraph graph = mini_graph();
  EXPECT_TRUE(lint_file("src/nand/c.cpp",
                        "assert(x);  // xlf-lint: allow(raw-assert)\n", graph)
                  .empty());
  EXPECT_TRUE(lint_file("src/nand/c.cpp",
                        "// xlf-lint: allow(raw-assert)\nassert(x);\n", graph)
                  .empty());
  // An allow for a different rule suppresses nothing.
  EXPECT_EQ(lint_file("src/nand/c.cpp",
                      "assert(x);  // xlf-lint: allow(no-wall-clock)\n", graph)
                .size(),
            1u);
  // A preceding-line allow only arms the next line, not the whole file.
  EXPECT_EQ(lint_file("src/nand/c.cpp",
                      "// xlf-lint: allow(raw-assert)\nint y;\nassert(x);\n",
                      graph)
                .size(),
            1u);
}

// ------------------------------------------------------------------ CLI

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "xlf_lint_cli";
    fs::remove_all(root_);
    fs::create_directories(root_ / "src" / "util");
    fs::create_directories(root_ / "src" / "ftl");
    write("layers.txt", "util:\nftl: util\n");
    write("src/util/ok.hpp", "#pragma once\nint fine();\n");
    write("src/ftl/ok.cpp", "#include \"src/util/ok.hpp\"\n");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    std::ofstream out(root_ / rel);
    out << text;
  }
  int run(const std::vector<std::string>& extra_args) {
    std::vector<std::string> args = {"--layers",
                                     (root_ / "layers.txt").string()};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    out_.str("");
    err_.str("");
    return run_cli(args, out_, err_);
  }

  fs::path root_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, CleanTreeExitsZeroWithNoOutput) {
  EXPECT_EQ(run({(root_ / "src").string()}), 0);
  EXPECT_EQ(out_.str(), "");
}

TEST_F(CliTest, SeededLayeringViolationExitsOneAndNamesTheSite) {
  write("src/util/scratch.hpp", "#include \"src/ftl/ok.hpp\"\n");
  EXPECT_EQ(run({(root_ / "src").string()}), 1);
  EXPECT_NE(out_.str().find("scratch.hpp:1: [layering]"), std::string::npos)
      << out_.str();
  EXPECT_NE(err_.str().find("1 finding"), std::string::npos);
}

TEST_F(CliTest, AllowCommentTurnsTheSameSeedClean) {
  write("src/util/scratch.hpp",
        "// xlf-lint: allow(layering)\n#include \"src/ftl/ok.hpp\"\n");
  EXPECT_EQ(run({(root_ / "src").string()}), 0) << out_.str();
}

TEST_F(CliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run({"--no-such-flag"}), 2);
  EXPECT_NE(err_.str().find("--help"), std::string::npos);
  EXPECT_EQ(run({}), 2);  // no paths
  EXPECT_EQ(run_cli({"--layers"}, out_, err_), 2);  // missing value
  // Unreadable layers file or target path: I/O error, not findings.
  EXPECT_EQ(run_cli({"--layers", "/nonexistent/layers.txt", "src"}, out_,
                    err_),
            2);
  EXPECT_EQ(run({(root_ / "no-such-dir").string()}), 2);
}

TEST_F(CliTest, ListRulesPrintsEveryRuleAndExitsZero) {
  EXPECT_EQ(run({"--list-rules"}), 0);
  for (const RuleInfo& rule : rule_infos()) {
    EXPECT_NE(out_.str().find(rule.name), std::string::npos) << rule.name;
  }
}

}  // namespace
}  // namespace xlf::lint
