// Unit suite for xlf_lint: rule hits, the allow-comment escape hatch,
// DAG parsing/violations, and the CLI exit-code contract (0 clean,
// 1 findings, 2 usage/I-O error) — the contract CI leans on. Also
// covers the token lexer (incl. preprocessor-conditional liveness),
// the cross-TU call graph and its scope-qualified resolution, the
// hot-alloc / lock-order / ack-order / arena-ref structural rules,
// the stale-allow audit, SARIF emission, the cross-implementation
// pin against the PR 7 line-based linter (fixtures/pin), and the
// xlf_sym_audit link-time audit.
#include "tools/lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "tools/lint/callgraph.hpp"
#include "tools/lint/lexer.hpp"
#include "tools/lint/sarif.hpp"
#include "tools/lint/sym_audit.hpp"

namespace xlf::lint {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

const char* kMiniDag =
    "util:\n"
    "gf: util\n"
    "bch: gf util\n"
    "ftl: util\n";

LayerGraph mini_graph() { return LayerGraph::parse(kMiniDag); }

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

TEST(Rules, ListCoversEveryRuleFamily) {
  const std::vector<RuleInfo>& rules = rule_infos();
  ASSERT_EQ(rules.size(), 11u);
  for (const char* name :
       {"layering", "no-ambient-random", "no-wall-clock",
        "no-unordered-emit", "no-ptr-order", "raw-assert", "hot-alloc",
        "lock-order", "ack-order", "arena-ref", "unused-allow"}) {
    EXPECT_TRUE(is_rule_name(name)) << name;
  }
  EXPECT_FALSE(is_rule_name("no-such-rule"));
}

TEST(LayerGraph, ClosureIsTransitiveAndIncludesSelf) {
  const LayerGraph graph = mini_graph();
  const std::set<std::string>& bch = graph.allowed("bch");
  EXPECT_EQ(bch, (std::set<std::string>{"bch", "gf", "util"}));
  EXPECT_EQ(graph.allowed("util"), std::set<std::string>{"util"});
  EXPECT_FALSE(graph.has_layer("explore"));
}

TEST(LayerGraph, RejectsCycleUndeclaredDepAndDuplicate) {
  EXPECT_THROW(LayerGraph::parse("a: b\nb: a\n"), std::runtime_error);
  EXPECT_THROW(LayerGraph::parse("a: ghost\n"), std::runtime_error);
  EXPECT_THROW(LayerGraph::parse("a:\na: \n"), std::runtime_error);
  EXPECT_THROW(LayerGraph::parse("just-a-layer-no-colon\n"),
               std::runtime_error);
}

TEST(Layering, UpwardIncludeIsAViolationDownwardIsNot) {
  const LayerGraph graph = mini_graph();
  const auto up = lint_file("src/util/widget.hpp",
                            "#include \"src/ftl/ftl.hpp\"\n", graph);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].rule, "layering");
  EXPECT_EQ(up[0].line, 1);
  EXPECT_NE(up[0].message.find("layers.txt"), std::string::npos);

  const auto down = lint_file(
      "src/bch/decoder.cpp",
      "#include \"src/gf/gf2m.hpp\"\n#include \"src/util/rng.hpp\"\n"
      "#include \"src/bch/decoder.hpp\"\n",
      graph);
  EXPECT_TRUE(down.empty());
}

TEST(Layering, CrossIncludeBetweenSiblingsIsAViolation) {
  const LayerGraph graph = mini_graph();
  // gf and ftl are siblings off util; neither may see the other.
  const auto cross =
      lint_file("src/ftl/x.cpp", "#include \"src/gf/gf2m.hpp\"\n", graph);
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0].rule, "layering");
}

TEST(Layering, FilesOutsideSrcLayersAreExempt) {
  const LayerGraph graph = mini_graph();
  const auto findings = lint_file(
      "tools/xlf_explore.cpp", "#include \"src/ftl/ftl.hpp\"\n", graph);
  EXPECT_TRUE(findings.empty());
}

TEST(Determinism, BanListHitsEachPattern) {
  const LayerGraph graph = mini_graph();
  const auto findings = lint_file("src/util/bad.cpp",
                                  "std::random_device rd;\n"
                                  "int r = rand();\n"
                                  "auto t0 = std::chrono::steady_clock::now();\n"
                                  "time_t t = time(nullptr);\n",
                                  graph);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"no-ambient-random", "no-ambient-random",
                                      "no-wall-clock", "no-wall-clock"}));
}

TEST(Determinism, CommentsAndStringsAreNotFindings) {
  const LayerGraph graph = mini_graph();
  const auto findings =
      lint_file("src/util/ok.cpp",
                "// program time(), rand() and steady_clock in a comment\n"
                "/* time( in a block comment */\n"
                "const char* msg = \"wall time() of rand()\";\n"
                "double sim_time(int events);  // not the C time()\n",
                graph);
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(Determinism, UnorderedContainersOnlyFlaggedInEmitterTus) {
  const LayerGraph graph = mini_graph();
  const std::string code = "std::unordered_map<int, int> index;\n";
  EXPECT_TRUE(lint_file("src/ftl/mapping.cpp", code, graph).empty());
  EXPECT_TRUE(is_emitter_tu("src/explore/report.cpp"));
  EXPECT_TRUE(is_emitter_tu("src/explore/ftl_csv.cpp"));
  EXPECT_FALSE(is_emitter_tu("src/util/json.cpp"));
  const auto report = lint_file("src/explore/report.cpp", code, graph);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].rule, "no-unordered-emit");
}

TEST(Determinism, PointerOrderingIsFlagged) {
  const LayerGraph graph = mini_graph();
  const auto findings = lint_file(
      "src/ftl/bad.cpp",
      "std::set<Block*, std::less<Block*>> by_addr;\n"
      "auto key = reinterpret_cast<std::uintptr_t>(block);\n",
      graph);
  EXPECT_EQ(rules_of(findings), (std::vector<std::string>{"no-ptr-order",
                                                          "no-ptr-order"}));
}

TEST(AssertHygiene, RawAssertFlaggedStaticAndGtestAssertsNot) {
  const LayerGraph graph = mini_graph();
  const auto raw =
      lint_file("src/nand/cell.cpp", "  assert(level < 4);\n", graph);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].rule, "raw-assert");
  EXPECT_NE(raw[0].message.find("XLF_EXPECT"), std::string::npos);

  const auto clean = lint_file("src/nand/cell.cpp",
                               "static_assert(sizeof(int) == 4);\n"
                               "ASSERT_EQ(a, b);\n"
                               "XLF_EXPECT(level < 4);\n",
                               graph);
  EXPECT_TRUE(clean.empty());
}

TEST(AllowComment, SameLineAndPrecedingLineSuppressWrongRuleDoesNot) {
  const LayerGraph graph = mini_graph();
  EXPECT_TRUE(lint_file("src/nand/c.cpp",
                        "assert(x);  // xlf-lint: allow(raw-assert)\n", graph)
                  .empty());
  EXPECT_TRUE(lint_file("src/nand/c.cpp",
                        "// xlf-lint: allow(raw-assert)\nassert(x);\n", graph)
                  .empty());
  // An allow for a different rule suppresses nothing.
  EXPECT_EQ(lint_file("src/nand/c.cpp",
                      "assert(x);  // xlf-lint: allow(no-wall-clock)\n", graph)
                .size(),
            1u);
  // A preceding-line allow only arms the next line, not the whole file.
  EXPECT_EQ(lint_file("src/nand/c.cpp",
                      "// xlf-lint: allow(raw-assert)\nint y;\nassert(x);\n",
                      graph)
                .size(),
            1u);
}

// ---------------------------------------------------------------- lexer

TEST(Lexer, TokenKindsAndPositions) {
  const LexedFile lx = lex("int x = 42;\nfoo->bar(x);\n");
  ASSERT_GE(lx.tokens.size(), 10u);
  EXPECT_EQ(lx.tokens[0].kind, TokKind::kIdentifier);
  EXPECT_EQ(lx.tokens[0].text, "int");
  EXPECT_EQ(lx.tokens[0].line, 1);
  EXPECT_EQ(lx.tokens[0].col, 0);
  EXPECT_EQ(lx.tokens[2].kind, TokKind::kPunct);  // '='
  EXPECT_EQ(lx.tokens[3].kind, TokKind::kNumber);
  EXPECT_EQ(lx.tokens[3].text, "42");
  // "->" is one punctuator, at line 2.
  const auto arrow = std::find_if(
      lx.tokens.begin(), lx.tokens.end(),
      [](const Token& t) { return t.text == "->"; });
  ASSERT_NE(arrow, lx.tokens.end());
  EXPECT_EQ(arrow->line, 2);
}

TEST(Lexer, StrippedViewKeepsShapeAndBlanksLiterals) {
  const LexedFile lx = lex("int a = 1;  // rand()\nconst char* s = \"time(\";\n");
  ASSERT_EQ(lx.raw.size(), 2u);
  ASSERT_EQ(lx.code.size(), 2u);
  EXPECT_EQ(lx.code[0].size(), lx.raw[0].size());
  EXPECT_EQ(lx.code[1].size(), lx.raw[1].size());
  EXPECT_EQ(lx.code[0].find("rand"), std::string::npos);
  EXPECT_EQ(lx.code[1].find("time"), std::string::npos);
  EXPECT_NE(lx.code[0].find("int a"), std::string::npos);
}

TEST(Lexer, RawStringSpansLinesWithCustomDelimiter) {
  const LexedFile lx = lex(
      "auto s = R\"delim(\n"
      "rand(); an embedded )\" quote\n"
      ")delim\";\n"
      "int after = rand();\n");
  // Nothing from inside the raw literal reaches the code view...
  for (const std::string& line : {lx.code[0], lx.code[1], lx.code[2]}) {
    EXPECT_EQ(line.find("rand"), std::string::npos) << line;
  }
  // ...but code after its terminator does.
  EXPECT_NE(lx.code[3].find("rand"), std::string::npos);
}

TEST(Lexer, BackslashContinuationExtendsCommentsAndStrings) {
  const LexedFile lx = lex(
      "// a comment that continues \\\n"
      "rand(); srand(7);\n"
      "const char* s = \"spliced \\\n"
      "still a string rand()\";\n"
      "int live = rand();\n");
  EXPECT_EQ(lx.code[1].find("rand"), std::string::npos) << lx.code[1];
  EXPECT_EQ(lx.code[3].find("rand"), std::string::npos) << lx.code[3];
  EXPECT_NE(lx.code[4].find("rand"), std::string::npos);
}

TEST(Lexer, PreprocessorTokensAreFlagged) {
  const LexedFile lx = lex("#include <mutex>\nint x;\n");
  ASSERT_FALSE(lx.tokens.empty());
  EXPECT_TRUE(lx.tokens.front().preprocessor);
  const auto mutex_tok = std::find_if(
      lx.tokens.begin(), lx.tokens.end(),
      [](const Token& t) { return t.text == "mutex"; });
  ASSERT_NE(mutex_tok, lx.tokens.end());
  EXPECT_TRUE(mutex_tok->preprocessor);
  EXPECT_FALSE(lx.tokens.back().preprocessor);  // the ';' after `int x`
}

TEST(Lexer, IfZeroRegionEmitsNoTokensAndIsMarkedDead) {
  const LexedFile lx = lex(
      "int before = 1;\n"
      "#if 0\n"
      "int dead = rand();\n"
      "#endif\n"
      "int after = rand();\n");
  // Nothing from the disabled region reaches the token stream or the
  // code view; the live map pins down exactly which lines died.
  EXPECT_EQ(lx.code[2].find("rand"), std::string::npos);
  EXPECT_NE(lx.code[4].find("rand"), std::string::npos);
  ASSERT_EQ(lx.live.size(), 5u);
  EXPECT_EQ(lx.live[0], 1);  // int before
  EXPECT_EQ(lx.live[2], 0);  // int dead
  EXPECT_EQ(lx.live[4], 1);  // int after
  for (const Token& tok : lx.tokens) {
    EXPECT_NE(tok.text, "dead") << "token leaked from a dead region";
  }
}

TEST(Lexer, ElseArmOfIfOneIsDeadAndOfIfZeroIsLive) {
  const LexedFile lx = lex(
      "#if 1\n"
      "int live_arm;\n"
      "#else\n"
      "int dead_arm;\n"
      "#endif\n"
      "#if 0\n"
      "int dead_arm2;\n"
      "#else\n"
      "int live_arm2;\n"
      "#endif\n");
  EXPECT_EQ(lx.live[1], 1);  // live_arm
  EXPECT_EQ(lx.live[3], 0);  // dead_arm
  EXPECT_EQ(lx.live[6], 0);  // dead_arm2
  EXPECT_EQ(lx.live[8], 1);  // live_arm2
}

TEST(Lexer, IfdefKeepsBothArmsLive) {
  // The lexer cannot evaluate macro state: both arms stay live, so a
  // rule over-reports rather than misses (see file comment).
  const LexedFile lx = lex(
      "#ifdef SOME_MACRO\n"
      "int arm_a = rand();\n"
      "#else\n"
      "int arm_b = rand();\n"
      "#endif\n");
  EXPECT_EQ(lx.live[1], 1);
  EXPECT_EQ(lx.live[3], 1);
  EXPECT_NE(lx.code[1].find("rand"), std::string::npos);
  EXPECT_NE(lx.code[3].find("rand"), std::string::npos);
}

TEST(Lexer, NestedConditionalsInsideDeadRegionStayDead) {
  const LexedFile lx = lex(
      "#if 0\n"
      "#if 1\n"
      "int nested_dead;\n"
      "#endif\n"
      "#ifdef ANY\n"
      "int also_dead;\n"
      "#endif\n"
      "#endif\n"
      "int live_tail;\n");
  EXPECT_EQ(lx.live[2], 0);
  EXPECT_EQ(lx.live[5], 0);
  EXPECT_EQ(lx.live[8], 1);
  for (const Token& tok : lx.tokens) {
    EXPECT_NE(tok.text, "nested_dead");
    EXPECT_NE(tok.text, "also_dead");
  }
}

TEST(Lexer, DisabledRegionHidesBannedTokensFromRules) {
  // End-to-end: a banned construct inside `#if 0` is not a finding,
  // the same construct after `#endif` is.
  const auto findings = lint_file("src/util/pp.cpp",
                                  "#if 0\n"
                                  "int a = rand();\n"
                                  "#endif\n"
                                  "int b = rand();\n",
                                  mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-ambient-random");
  EXPECT_EQ(findings[0].line, 4);
}

// ------------------------------------- fixtures: pin and adversarial

#ifdef XLF_LINT_FIXTURE_DIR

// Byte-identical cross-implementation pin: expected.txt was generated
// by the PR 7 line-based linter over fixtures/pin before the lexer
// rewrite. The token-based reimplementation must reproduce it
// exactly — same files, lines, rules, messages, and order.
TEST(Pin, TokenLinterReproducesLineLinterByteForByte) {
  const fs::path pin = fs::path(XLF_LINT_FIXTURE_DIR) / "pin";
  const LayerGraph graph =
      LayerGraph::parse_file((pin / "layers.txt").string());
  std::vector<std::string> rel_paths;
  for (const auto& entry : fs::recursive_directory_iterator(pin / "src")) {
    if (entry.is_regular_file()) {
      rel_paths.push_back(
          fs::relative(entry.path(), pin).generic_string());
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  std::vector<FileInput> inputs;
  for (const std::string& rel : rel_paths) {
    inputs.push_back(FileInput{rel, read_file(pin / rel)});
  }
  std::string got;
  for (const Finding& f : lint_files(inputs, graph)) {
    got += format_finding(f) + "\n";
  }
  EXPECT_EQ(got, read_file(pin / "expected.txt"));
}

// The adversarial fixtures hold banned tokens inside raw strings
// spanning lines and behind backslash continuations; only the one
// genuine construct after them may be reported.
TEST(Adversarial, RawStringsSpanningLinesHideBannedTokens) {
  const fs::path file =
      fs::path(XLF_LINT_FIXTURE_DIR) / "adversarial" / "raw_strings.cpp";
  const auto findings =
      lint_file("src/util/raw_strings.cpp", read_file(file), mini_graph());
  ASSERT_EQ(findings.size(), 1u) << format_finding(findings.front());
  EXPECT_EQ(findings[0].rule, "no-ambient-random");
  EXPECT_EQ(findings[0].line, 27);
}

TEST(Adversarial, BackslashContinuationsHideBannedTokens) {
  const fs::path file =
      fs::path(XLF_LINT_FIXTURE_DIR) / "adversarial" / "continuation.cpp";
  const auto findings =
      lint_file("src/util/continuation.cpp", read_file(file), mini_graph());
  ASSERT_EQ(findings.size(), 1u) << format_finding(findings.front());
  EXPECT_EQ(findings[0].rule, "no-ambient-random");
  EXPECT_EQ(findings[0].line, 23);
}

TEST(Adversarial, PreprocessorDisabledRegionsHideBannedTokens) {
  const fs::path file =
      fs::path(XLF_LINT_FIXTURE_DIR) / "adversarial" / "preprocessor.cpp";
  const auto findings =
      lint_file("src/util/preprocessor.cpp", read_file(file), mini_graph());
  ASSERT_EQ(findings.size(), 1u) << format_finding(findings.front());
  EXPECT_EQ(findings[0].rule, "no-ambient-random");
  EXPECT_EQ(findings[0].line, 31);  // `int genuine = rand();`
}

#endif  // XLF_LINT_FIXTURE_DIR

// ------------------------------------------------------------ hot-alloc

TEST(HotAlloc, DirectAllocationInHotFunctionIsFlagged) {
  const auto findings = lint_file("src/ftl/hot.cpp",
                                  "// xlf: hot\n"
                                  "void tick() { buf.push_back(1); }\n",
                                  mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hot-alloc");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("'tick'"), std::string::npos);
}

TEST(HotAlloc, TransitiveCalleeIsFlaggedAndNamesTheRoot) {
  const auto findings = lint_file("src/ftl/hot.cpp",
                                  "void helper() { int* p = new int; }\n"
                                  "void middle() { helper(); }\n"
                                  "// xlf: hot\n"
                                  "void tick() { middle(); }\n",
                                  mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("'helper'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("hot via 'tick'"), std::string::npos);
}

TEST(HotAlloc, UnannotatedFunctionsAreNotScanned) {
  const auto findings = lint_file(
      "src/ftl/cold.cpp",
      "void setup() { buf.reserve(100); auto p = std::make_unique<int>(); }\n",
      mini_graph());
  EXPECT_TRUE(findings.empty());
}

TEST(HotAlloc, EveryBannedConstructIsCaught) {
  const std::string preamble = "// xlf: hot\nvoid tick() {\n";
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"int* a = new int;", "new"},
      {"void* b = malloc(8);", "malloc()"},
      {"auto c = std::make_unique<int>();", "std::make_unique"},
      {"auto d = std::make_shared<int>();", "std::make_shared"},
      {"v.push_back(1);", "push_back()"},
      {"v.emplace_back();", "emplace_back()"},
      {"v.resize(9);", "resize()"},
      {"v.reserve(9);", "reserve()"},
      {"std::function<void()> f = g;", "std::function"},
      {"std::string s = name;", "std::string"},
      {"auto t = std::to_string(7);", "std::to_string"},
  };
  for (const auto& [code, construct] : cases) {
    const auto findings = lint_file(
        "src/ftl/hot.cpp", preamble + code + "\n}\n", mini_graph());
    ASSERT_EQ(findings.size(), 1u) << code;
    EXPECT_EQ(findings[0].rule, "hot-alloc") << code;
    EXPECT_NE(findings[0].message.find("'" + construct + "'"),
              std::string::npos)
        << code << " → " << findings[0].message;
  }
}

TEST(HotAlloc, AllowEscapeSuppressesOneArenaGrowthSite) {
  const auto findings =
      lint_file("src/ftl/hot.cpp",
                "// xlf: hot\n"
                "void tick() {\n"
                "  pool.emplace_back();  // xlf-lint: allow(hot-alloc)\n"
                "  pool.push_back(1);\n"
                "}\n",
                mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);  // only the unescaped site survives
}

TEST(HotAlloc, LambdaBodyBelongsToTheEnclosingFunction) {
  // An event closure built inside a hot function: the allocation in
  // the lambda body is charged to the function that creates it.
  const auto findings =
      lint_file("src/ftl/hot.cpp",
                "// xlf: hot\n"
                "void tick() {\n"
                "  schedule([this] { log.push_back(1); });\n"
                "}\n",
                mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hot-alloc");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(HotAlloc, CrossTuCalleeIsFlaggedThroughTheCallGraph) {
  // The hot root and the allocating leaf live in different TUs; the
  // PR 9 per-file propagation could not see this edge.
  const std::vector<FileInput> inputs = {
      {"src/ftl/root.cpp",
       "// xlf: hot\n"
       "void tick() { helper(); }\n"},
      {"src/util/leaf.cpp",
       "void helper() { int* p = new int; }\n"},
  };
  const auto findings = lint_files(inputs, mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hot-alloc");
  EXPECT_EQ(findings[0].file, "src/util/leaf.cpp");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("'helper'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("hot via 'tick'"), std::string::npos);
}

TEST(HotAlloc, ColdMarkerStopsPropagationThroughTheMarkedDef) {
  // `// xlf: cold` is a reviewed contract barrier: the def and its
  // whole closure leave the hot reach set.
  // Blank lines keep each def's marker window (three lines above the
  // name) from bleeding into its neighbours.
  const std::string via_cold =
      "void leaf() { buf.push_back(1); }\n"
      "\n\n\n"
      "// xlf: cold\n"
      "void report() { leaf(); }\n"
      "\n\n\n"
      "// xlf: hot\n"
      "void tick() { report(); }\n";
  EXPECT_TRUE(lint_file("src/ftl/cold.cpp", via_cold, mini_graph()).empty());

  // A second, unmarked path to the same leaf keeps it hot: cold cuts
  // the marked node, not everything it happens to call.
  const std::string two_paths = via_cold + "\n\n\n"
                                           "void step() { leaf(); }\n"
                                           "\n\n\n"
                                           "// xlf: hot\n"
                                           "void tock() { step(); }\n";
  const auto findings = lint_file("src/ftl/cold.cpp", two_paths, mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("hot via 'tock'"), std::string::npos);
}

TEST(HotAlloc, ColdMarkedHotRootIsNotARoot) {
  // cold wins when both markers are present (a hot-marked def being
  // demoted during triage should not need the hot mark removed first).
  const auto findings = lint_file("src/ftl/both.cpp",
                                  "// xlf: hot\n"
                                  "// xlf: cold\n"
                                  "void tick() { buf.push_back(1); }\n",
                                  mini_graph());
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(HotAlloc, MemberDefinitionMessagesUseQualifiedNames) {
  const auto findings = lint_file("src/ftl/member.cpp",
                                  "namespace xlf::ftl {\n"
                                  "// xlf: hot\n"
                                  "void Ftl::tick() { buf.push_back(1); }\n"
                                  "}\n",
                                  mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("'xlf::ftl::Ftl::tick'"),
            std::string::npos)
      << findings[0].message;
}

TEST(HotAlloc, BannedTokenInCommentOrStringIsNotAFinding) {
  const auto findings = lint_file(
      "src/ftl/hot.cpp",
      "// xlf: hot\n"
      "void tick() {\n"
      "  // calling new or push_back here would allocate\n"
      "  const char* why = \"no new std::string allowed\";\n"
      "  (void)why;\n"
      "}\n",
      mini_graph());
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

// ----------------------------------------------------------- lock-order

TEST(LockOrder, NestedAcquisitionIsFlagged) {
  const auto findings =
      lint_file("src/ftl/locks.cpp",
                "void f() {\n"
                "  std::lock_guard<std::mutex> a(mu_a);\n"
                "  std::lock_guard<std::mutex> b(mu_b);\n"
                "}\n",
                mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("'mu_b'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'mu_a'"), std::string::npos);
}

TEST(LockOrder, SequentialScopedLocksAreClean) {
  // The thread_pool.cpp / timing.cpp shape: two critical sections in
  // sequence, each holding one lock. Scope exit releases the first
  // guard before the second is taken.
  const auto findings =
      lint_file("src/ftl/locks.cpp",
                "void f() {\n"
                "  {\n"
                "    std::lock_guard<std::mutex> a(mu_a);\n"
                "    touch();\n"
                "  }\n"
                "  std::lock_guard<std::mutex> b(mu_b);\n"
                "}\n",
                mini_graph());
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(LockOrder, ScopedLockWithTwoMutexesIsSuspectByDefault) {
  const auto findings = lint_file(
      "src/ftl/locks.cpp",
      "void f() { std::scoped_lock lk(mu_a, mu_b); }\n", mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
}

TEST(LockOrder, DeferLockAndUnlockAreNotAcquisitions) {
  const auto findings =
      lint_file("src/ftl/locks.cpp",
                "void f() {\n"
                "  std::unique_lock<std::mutex> a(mu_a, std::defer_lock);\n"
                "  std::lock_guard<std::mutex> b(mu_b);\n"
                "}\n"
                "void g() {\n"
                "  mu_a.lock();\n"
                "  mu_a.unlock();\n"
                "  mu_b.lock();\n"
                "}\n",
                mini_graph());
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(LockOrder, CrossTuInversionIsFlaggedInBothTus) {
  const std::vector<FileInput> inputs = {
      {"src/ftl/one.cpp",
       "void f() {\n"
       "  std::lock_guard<std::mutex> a(mu_a);\n"
       "  mu_b.lock();  // xlf-lint: allow(lock-order)\n"
       "}\n"},
      {"src/util/two.cpp",
       "void g() {\n"
       "  std::lock_guard<std::mutex> b(mu_b);\n"
       "  mu_a.lock();  // xlf-lint: allow(lock-order)\n"
       "}\n"},
  };
  // The per-site allows silence the nested-acquisition findings but a
  // pair inverted across TUs has no single site to annotate — it only
  // exists at lint_files scope... so suppressing both nested findings
  // also suppresses the inversion (every site of both directions is
  // allowed). Drop one allow and the inversion surfaces in both TUs.
  EXPECT_TRUE(lint_files(inputs, mini_graph()).empty());

  std::vector<FileInput> bare = inputs;
  bare[0].contents =
      "void f() {\n"
      "  std::lock_guard<std::mutex> a(mu_a);\n"
      "  mu_b.lock();\n"
      "}\n";
  bare[1].contents =
      "void g() {\n"
      "  std::lock_guard<std::mutex> b(mu_b);\n"
      "  mu_a.lock();\n"
      "}\n";
  const auto findings = lint_files(bare, mini_graph());
  // Two nested-acquisition findings plus two inversion findings.
  ASSERT_EQ(findings.size(), 4u);
  int inversions = 0;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "lock-order");
    if (f.message.find("opposite order") != std::string::npos) ++inversions;
  }
  EXPECT_EQ(inversions, 2);
}

TEST(LockOrder, MutexDeclarationSuspectInNandAndSimOnly) {
  const std::string decl = "std::mutex guard_;\n";
  for (const char* path : {"src/nand/x.hpp", "src/sim/x.hpp"}) {
    // nand/sim are not in the mini DAG; layer membership comes from
    // the path alone, so use the full-tree graph shape.
    const auto findings = lint_file(
        path, decl, LayerGraph::parse("util:\nnand: util\nsim: util\n"));
    ASSERT_EQ(findings.size(), 1u) << path;
    EXPECT_EQ(findings[0].rule, "lock-order");
    EXPECT_NE(findings[0].message.find("'guard_'"), std::string::npos);
  }
  EXPECT_TRUE(lint_file("src/util/x.hpp", decl, mini_graph()).empty());
  // A lock TYPE mention (template argument, #include) is not a
  // declaration; only `mutex <identifier>` is.
  EXPECT_TRUE(lint_file("src/nand/y.cpp",
                        "#include <mutex>\n"
                        "void f() { std::lock_guard<std::mutex> lk(m_); }\n",
                        LayerGraph::parse("util:\nnand: util\n"))
                  .empty());
}

TEST(LockOrder, AllowEscapeSuppressesTheDeclarationFinding) {
  const auto findings = lint_file(
      "src/nand/x.hpp",
      "std::mutex guard_;  // xlf-lint: allow(lock-order)\n",
      LayerGraph::parse("util:\nnand: util\n"));
  EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------------ callgraph

// Structural tokens of one TU: comments and preprocessor tokens
// stripped, exactly as lint_files feeds CallGraph::build.
std::vector<Token> structural(const std::string& text) {
  std::vector<Token> out;
  for (const Token& tok : lex(text).tokens) {
    if (tok.kind != TokKind::kComment && !tok.preprocessor) {
      out.push_back(tok);
    }
  }
  return out;
}

std::size_t def_index(const CallGraph& graph, const std::string& qual) {
  for (std::size_t d = 0; d < graph.defs().size(); ++d) {
    if (graph.defs()[d].qual == qual) return d;
  }
  ADD_FAILURE() << "no def with qual " << qual;
  return CallGraph::npos;
}

TEST(CallGraphTest, NestedNamespacesQualifyDefinitions) {
  const std::vector<Token> code = structural(
      "namespace a { namespace b {\n"
      "void f() {}\n"
      "} }\n"
      "namespace a::b::c {\n"
      "void g() { f(); }\n"
      "}\n");
  const std::vector<const std::vector<Token>*> codes = {&code};
  const CallGraph graph = CallGraph::build(codes);
  ASSERT_EQ(graph.defs().size(), 2u);
  EXPECT_EQ(graph.defs()[0].qual, "a::b::f");
  EXPECT_EQ(graph.defs()[1].qual, "a::b::c::g");
  // g's unqualified call binds to the bare name `f` wherever it is.
  const std::size_t g = def_index(graph, "a::b::c::g");
  ASSERT_EQ(graph.callees(g).size(), 1u);
  EXPECT_EQ(graph.defs()[graph.callees(g)[0]].qual, "a::b::f");
}

TEST(CallGraphTest, OutOfLineMemberDefinitionCarriesTheWrittenChain) {
  const std::vector<Token> code = structural(
      "namespace xlf::ftl {\n"
      "void Ftl::flush(std::uint32_t q) { commit(); }\n"
      "}\n"
      "void commit() {}\n");
  const std::vector<const std::vector<Token>*> codes = {&code};
  const CallGraph graph = CallGraph::build(codes);
  const std::size_t flush = def_index(graph, "xlf::ftl::Ftl::flush");
  EXPECT_EQ(graph.defs()[flush].name, "flush");
  ASSERT_EQ(graph.callees(flush).size(), 1u);
  EXPECT_EQ(graph.defs()[graph.callees(flush)[0]].qual, "commit");
}

TEST(CallGraphTest, QualifiedCallMatchesComponentSuffixOnly) {
  const std::vector<Token> code = structural(
      "namespace a { void f() {} }\n"
      "namespace b { void f() {} }\n"
      "void caller() { a::f(); }\n");
  const std::vector<const std::vector<Token>*> codes = {&code};
  const CallGraph graph = CallGraph::build(codes);
  const std::size_t caller = def_index(graph, "caller");
  ASSERT_EQ(graph.callees(caller).size(), 1u);
  EXPECT_EQ(graph.defs()[graph.callees(caller)[0]].qual, "a::f");
}

TEST(CallGraphTest, UnqualifiedCallOverApproximatesAcrossOverloadSets) {
  // Documented over-approximation: name-level resolution binds an
  // unqualified (or member) call to EVERY same-named def — both
  // overloads, and a same-named method of an unrelated class.
  const std::vector<Token> a = structural(
      "void handle(int x) {}\n"
      "void handle(double x) {}\n");
  const std::vector<Token> b = structural(
      "struct Other { void handle(); };\n"
      "void Other::handle() {}\n"
      "void caller(Other& o) { o.handle(); }\n");
  const std::vector<const std::vector<Token>*> codes = {&a, &b};
  const CallGraph graph = CallGraph::build(codes);
  const std::size_t caller = def_index(graph, "caller");
  EXPECT_EQ(graph.callees(caller).size(), 3u);
}

TEST(CallGraphTest, AnonymousNamespaceDefsAreTuLocal) {
  const std::vector<Token> a = structural(
      "namespace { void local_helper() { int* p = new int; } }\n"
      "void entry_a() { local_helper(); }\n");
  const std::vector<Token> b = structural(
      "void entry_b() { local_helper(); }\n");
  const std::vector<const std::vector<Token>*> codes = {&a, &b};
  const CallGraph graph = CallGraph::build(codes);
  const std::size_t helper = def_index(graph, "local_helper");
  EXPECT_TRUE(graph.defs()[helper].tu_local);
  // Same-TU call binds; the other TU's call cannot see it.
  EXPECT_EQ(graph.callees(def_index(graph, "entry_a")).size(), 1u);
  EXPECT_TRUE(graph.callees(def_index(graph, "entry_b")).empty());
}

TEST(CallGraphTest, ReachStopsAtStopNodesAndRecordsParents) {
  const std::vector<Token> code = structural(
      "void leaf() {}\n"
      "void barrier() { leaf(); }\n"
      "void mid() { barrier(); }\n"
      "void root() { mid(); leaf(); }\n");
  const std::vector<const std::vector<Token>*> codes = {&code};
  const CallGraph graph = CallGraph::build(codes);
  const std::size_t leaf = def_index(graph, "leaf");
  const std::size_t barrier = def_index(graph, "barrier");
  const std::size_t root = def_index(graph, "root");

  std::vector<char> stop(graph.defs().size(), 0);
  stop[barrier] = 1;
  const CallGraph::Reach reach = graph.reach({root}, &stop);
  EXPECT_EQ(reach.parent[root], root);  // a root is its own parent
  EXPECT_EQ(reach.root[root], root);
  EXPECT_EQ(reach.parent[barrier], CallGraph::npos);  // never visited
  // leaf is still reached — via root's direct call, not the barrier.
  EXPECT_EQ(reach.parent[leaf], root);
  EXPECT_EQ(reach.root[leaf], root);

  // Without the stop set the same BFS walks straight through.
  const CallGraph::Reach open = graph.reach({root});
  EXPECT_NE(open.parent[barrier], CallGraph::npos);
}

// ------------------------------------------------------------- ack-order

TEST(AckOrder, MutationReachableFromAckWithoutDurableIsFlagged) {
  const std::vector<FileInput> inputs = {
      {"src/ftl/complete.cpp",
       "// xlf: ack\n"
       "void complete_slot() { apply(); }\n"},
      {"src/util/apply.cpp",
       "void apply(Dev& dev) { dev.program_page(1); }\n"},
  };
  const auto findings = lint_files(inputs, mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "ack-order");
  EXPECT_EQ(findings[0].file, "src/util/apply.cpp");
  EXPECT_EQ(findings[0].line, 1);
  // The message names the ack root and the call chain to the site.
  EXPECT_NE(findings[0].message.find("'program_page()'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'complete_slot'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("complete_slot -> apply"),
            std::string::npos)
      << findings[0].message;
}

TEST(AckOrder, MutationBehindADurableCommitIsClean) {
  const std::vector<FileInput> inputs = {
      {"src/ftl/complete.cpp",
       "// xlf: ack\n"
       "void complete_slot() { commit(); }\n"},
      {"src/ftl/commit.cpp",
       "// xlf: durable\n"
       "void commit(Dev& dev) { dev.program_page(1); }\n"},
  };
  const auto findings = lint_files(inputs, mini_graph());
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(AckOrder, EachMutationTokenIsCaught) {
  for (const char* mutation :
       {"program_page", "erase_block", "write_page_meta"}) {
    const std::string body = std::string("// xlf: ack\n") +
                             "void complete_slot(Dev& dev) { dev." +
                             mutation + "(0); }\n";
    const auto findings =
        lint_file("src/ftl/complete.cpp", body, mini_graph());
    ASSERT_EQ(findings.size(), 1u) << mutation;
    EXPECT_EQ(findings[0].rule, "ack-order") << mutation;
  }
}

TEST(AckOrder, AllowEscapeSuppressesTheMutationSite) {
  const auto findings = lint_file(
      "src/ftl/complete.cpp",
      "// xlf: ack\n"
      "void complete_slot(Dev& dev) {\n"
      "  dev.program_page(0);  // xlf-lint: allow(ack-order)\n"
      "}\n",
      mini_graph());
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(AckOrder, UnreachableMutationIsNotAFinding) {
  // A mutation in a function no ack site reaches is the normal write
  // path — not this rule's business.
  const auto findings = lint_file(
      "src/ftl/write.cpp",
      "void write_path(Dev& dev) { dev.program_page(0); }\n"
      "// xlf: ack\n"
      "void complete_slot() { post_stats(); }\n"
      "void post_stats() {}\n",
      mini_graph());
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

// ------------------------------------------------------------- arena-ref

TEST(ArenaRef, ReferenceUsedAcrossGrowthIsFlagged) {
  const auto findings = lint_file(
      "src/ftl/arena.cpp",
      "// xlf: arena(grows)\n"
      "std::vector<int> slots;\n"
      "int use() {\n"
      "  int& slot = slots[0];\n"
      "  slots.push_back(1);\n"
      "  return slot;\n"
      "}\n",
      mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "arena-ref");
  EXPECT_EQ(findings[0].line, 5);  // reported at the growing call
  EXPECT_NE(findings[0].message.find("'slot'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'push_back()'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("arena 'slots'"), std::string::npos);
}

TEST(ArenaRef, TrailingAnnotationAndCrossTuUseAreCovered) {
  // Header declares the arena (trailing marker); the .cpp holds the
  // dangling use — the decl set is global across the lint set.
  const std::vector<FileInput> inputs = {
      {"src/ftl/arena.hpp",
       "std::vector<Slot> pool_;  // xlf: arena(grows)\n"},
      {"src/ftl/arena.cpp",
       "void Ftl::grow_pool() {\n"
       "  Slot* head = pool_.data();\n"
       "  pool_.emplace_back();\n"
       "  head->touch();\n"
       "}\n"},
  };
  const auto findings = lint_files(inputs, mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "arena-ref");
  EXPECT_EQ(findings[0].file, "src/ftl/arena.cpp");
  EXPECT_NE(findings[0].message.find("'emplace_back()'"), std::string::npos);
}

TEST(ArenaRef, ByValueCopyIsClean) {
  const auto findings = lint_file(
      "src/ftl/arena.cpp",
      "// xlf: arena(grows)\n"
      "std::vector<int> slots;\n"
      "int use() {\n"
      "  int slot = slots[0];\n"  // copy, not a reference
      "  slots.push_back(1);\n"
      "  return slot;\n"
      "}\n",
      mini_graph());
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(ArenaRef, GrowthAfterTheLastUseIsClean) {
  const auto findings = lint_file(
      "src/ftl/arena.cpp",
      "// xlf: arena(grows)\n"
      "std::vector<int> slots;\n"
      "int use() {\n"
      "  int& slot = slots[0];\n"
      "  int copy = slot;\n"
      "  slots.push_back(1);\n"
      "  return copy;\n"
      "}\n",
      mini_graph());
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(ArenaRef, GrowthOfADifferentContainerIsClean) {
  // Receiver matching: growing some other vector does not invalidate
  // a binding into the arena.
  const auto findings = lint_file(
      "src/ftl/arena.cpp",
      "// xlf: arena(grows)\n"
      "std::vector<int> slots;\n"
      "std::vector<int> log;\n"
      "int use() {\n"
      "  int& slot = slots[0];\n"
      "  log.push_back(1);\n"
      "  return slot;\n"
      "}\n",
      mini_graph());
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

TEST(ArenaRef, RangeForOverTheArenaAcrossGrowthIsFlagged) {
  const auto findings = lint_file(
      "src/ftl/arena.cpp",
      "// xlf: arena(grows)\n"
      "std::vector<int> slots;\n"
      "void use() {\n"
      "  for (int& slot : slots) {\n"
      "    slots.push_back(slot);\n"
      "  }\n"
      "}\n",
      mini_graph());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "arena-ref");
}

TEST(ArenaRef, AllowEscapeSuppressesTheBinding) {
  const auto findings = lint_file(
      "src/ftl/arena.cpp",
      "// xlf: arena(grows)\n"
      "std::vector<int> slots;\n"
      "int use() {\n"
      "  int& slot = slots[0];\n"
      "  slots.push_back(1);  // xlf-lint: allow(arena-ref)\n"
      "  return slot;\n"
      "}\n",
      mini_graph());
  EXPECT_TRUE(findings.empty()) << format_finding(findings.front());
}

// ---------------------------------------------------------- unused-allow

TEST(UnusedAllow, StaleAllowIsReportedOnlyUnderTheOption) {
  const std::vector<FileInput> inputs = {
      {"src/util/stale.hpp",
       "// xlf-lint: allow(hot-alloc)\n"
       "int fine();\n"},
  };
  // Default run: the stale comment is invisible (the pin fixture and
  // every pre-PR-10 caller depend on that).
  EXPECT_TRUE(lint_files(inputs, mini_graph()).empty());

  LintOptions options;
  options.report_unused_allows = true;
  const auto findings = lint_files(inputs, mini_graph(), options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unused-allow");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("allow(hot-alloc)"), std::string::npos);
}

TEST(UnusedAllow, AllowThatSuppressesAFindingIsNotReported) {
  const std::vector<FileInput> inputs = {
      {"src/ftl/hot.cpp",
       "// xlf: hot\n"
       "void tick() {\n"
       "  pool.push_back(1);  // xlf-lint: allow(hot-alloc)\n"
       "}\n"},
  };
  LintOptions options;
  options.report_unused_allows = true;
  EXPECT_TRUE(lint_files(inputs, mini_graph(), options).empty());
}

TEST(UnusedAllow, UnknownRuleNameIsReported) {
  const std::vector<FileInput> inputs = {
      {"src/util/typo.hpp",
       "int x = rand();  // xlf-lint: allow(no-ambient-randm)\n"},
  };
  LintOptions options;
  options.report_unused_allows = true;
  const auto findings = lint_files(inputs, mini_graph(), options);
  // The typo'd allow suppresses nothing, so the original finding
  // stands AND the stale suppression is called out as a typo.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "no-ambient-random");
  EXPECT_EQ(findings[1].rule, "unused-allow");
  EXPECT_NE(findings[1].message.find("unknown rule 'no-ambient-randm'"),
            std::string::npos)
      << findings[1].message;
}

TEST(UnusedAllow, CommaListReportsOnlyTheStaleEntries) {
  const std::vector<FileInput> inputs = {
      {"src/ftl/hot.cpp",
       "// xlf: hot\n"
       "void tick() {\n"
       "  pool.push_back(1);  // xlf-lint: allow(hot-alloc, lock-order)\n"
       "}\n"},
  };
  LintOptions options;
  options.report_unused_allows = true;
  const auto findings = lint_files(inputs, mini_graph(), options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unused-allow");
  EXPECT_NE(findings[0].message.find("allow(lock-order)"), std::string::npos);
}

// ----------------------------------------------------------------- SARIF

TEST(Sarif, EmptyRunStillCarriesTheToolAndRuleMetadata) {
  const std::string doc = to_sarif({});
  EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(doc.find("sarif-2.1.0"), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"xlf_lint\""), std::string::npos);
  EXPECT_NE(doc.find("\"results\": ["), std::string::npos);
  EXPECT_EQ(doc.find("\"ruleId\""), std::string::npos);  // no results
  // Every rule family ships its metadata even with no findings.
  for (const RuleInfo& rule : rule_infos()) {
    EXPECT_NE(doc.find("\"id\": \"" + std::string(rule.name) + "\""),
              std::string::npos)
        << rule.name;
  }
}

TEST(Sarif, FindingsBecomeResultsWithLocationsAndEscapedText) {
  std::vector<Finding> findings;
  findings.push_back(Finding{"src/ftl/a.cpp", 7, "hot-alloc",
                             "uses \"quotes\" and a\ttab and a\\slash"});
  const std::string doc = to_sarif(findings);
  EXPECT_NE(doc.find("\"ruleId\": \"hot-alloc\""), std::string::npos);
  EXPECT_NE(doc.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(doc.find("\"uri\": \"src/ftl/a.cpp\""), std::string::npos);
  EXPECT_NE(doc.find("\"level\": \"error\""), std::string::npos);
  // RFC 8259 escaping: quote, tab, backslash.
  EXPECT_NE(doc.find("uses \\\"quotes\\\" and a\\ttab"), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("a\\\\slash"), std::string::npos);
}

TEST(Sarif, OutputIsDeterministic) {
  std::vector<Finding> findings;
  findings.push_back(Finding{"src/util/x.hpp", 3, "layering", "message"});
  EXPECT_EQ(to_sarif(findings), to_sarif(findings));
}

// ------------------------------------------------------------ sym-audit

TEST(SymAudit, ParsesPosixAndBsdNmOutput) {
  ArchiveSyms syms;
  parse_nm(
      "member.o:\n"
      "_ZN3xlf3ftl3runEv T 0000000000000000 0000000000000042\n"
      "_ZN3xlf4util3logEv U\n"
      "local_helper t 0000000000000010 0000000000000008\n"
      "\n"
      "0000000000000020 T bsd_defined\n"
      "                 U bsd_undefined\n"
      "0000000000000030 W weak_defined\n",
      syms);
  EXPECT_EQ(syms.defined, (std::set<std::string>{"_ZN3xlf3ftl3runEv",
                                                 "bsd_defined",
                                                 "weak_defined"}));
  EXPECT_EQ(syms.undefined, (std::set<std::string>{"_ZN3xlf4util3logEv",
                                                   "bsd_undefined"}));
  // Lowercase locals cannot satisfy a cross-archive reference.
  EXPECT_EQ(syms.defined.count("local_helper"), 0u);
}

TEST(SymAudit, UpwardReferenceIsAViolationDownwardIsNot) {
  const LayerGraph graph = LayerGraph::parse("util:\nftl: util\n");
  ArchiveSyms util{"util", "libxlf_util.a", {"util_sym"}, {"ftl_sym"}};
  ArchiveSyms ftl{"ftl", "libxlf_ftl.a", {"ftl_sym"}, {"util_sym"}};
  const auto violations = audit({util, ftl}, graph);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].layer, "util");
  EXPECT_EQ(violations[0].symbol, "ftl_sym");
  EXPECT_EQ(violations[0].owners, std::set<std::string>{"ftl"});
  const std::string text = format_violation(violations[0]);
  EXPECT_NE(text.find("'util'"), std::string::npos);
  EXPECT_NE(text.find("ftl_sym"), std::string::npos);
  EXPECT_NE(text.find("layers.txt"), std::string::npos);
}

TEST(SymAudit, ExternalAndSelfSatisfiedSymbolsAreIgnored) {
  const LayerGraph graph = LayerGraph::parse("util:\nftl: util\n");
  // "memcpy" is defined by no xlf archive; "intra" is U in one member
  // of the archive and T in another, so the archive satisfies itself.
  ArchiveSyms util{"util",
                   "libxlf_util.a",
                   {"intra"},
                   {"memcpy", "intra"}};
  ArchiveSyms ftl{"ftl", "libxlf_ftl.a", {}, {}};
  EXPECT_TRUE(audit({util, ftl}, graph).empty());
}

TEST(SymAudit, MultiOwnerSymbolIsFineIfAnyOwnerIsReachable) {
  const LayerGraph graph = LayerGraph::parse("util:\nftl: util\nsim: ftl util\n");
  // Both ftl and sim define dup_sym; ftl may use it (sim also defines
  // it, but ftl's closure covers ftl itself via... the other owner
  // being itself is erased; util may NOT use it (neither ftl nor sim
  // is in util's closure).
  ArchiveSyms util{"util", "libxlf_util.a", {}, {"dup_sym"}};
  ArchiveSyms ftl{"ftl", "libxlf_ftl.a", {"dup_sym"}, {}};
  ArchiveSyms sim{"sim", "libxlf_sim.a", {"dup_sym"}, {"dup_sym"}};
  const auto violations = audit({util, ftl, sim}, graph);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].layer, "util");
}

TEST(SymAudit, LayerOfArchiveParsesOnlyXlfArchives) {
  EXPECT_EQ(layer_of_archive("/build/libxlf_ftl.a"), "ftl");
  EXPECT_EQ(layer_of_archive("libxlf_ecc_hw.a"), "ecc_hw");
  EXPECT_EQ(layer_of_archive("libother.a"), "");
  EXPECT_EQ(layer_of_archive("libxlf_ftl.so"), "");
  EXPECT_EQ(layer_of_archive("xlf_ftl.a"), "");
}

TEST(SymAudit, DemanglesItaniumSymbols) {
  const std::string demangled = demangle("_ZN3xlf3ftl3runEv");
  // Platforms without <cxxabi.h> fall back to the mangled name; on
  // gcc/clang the readable form must come back.
#if defined(__GNUG__)
  EXPECT_EQ(demangled, "xlf::ftl::run()");
#else
  EXPECT_EQ(demangled, "");
#endif
  EXPECT_EQ(demangle("not_a_mangled_name$$"), "");
}

TEST(SymAudit, CliUsageErrorsExitTwo) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_sym_audit_cli({}, out, err), 2);  // no paths
  EXPECT_EQ(run_sym_audit_cli({"--nm"}, out, err), 2);  // missing value
  EXPECT_EQ(run_sym_audit_cli({"--no-such-flag"}, out, err), 2);
  EXPECT_EQ(run_sym_audit_cli({"--layers", "/nonexistent/layers.txt", "."},
                              out, err),
            2);
}

TEST(SymAudit, CliRejectsDirectoriesWithNoArchives) {
  const fs::path empty = fs::path(::testing::TempDir()) / "sym_audit_empty";
  fs::create_directories(empty);
  std::ofstream(empty / "layers.txt") << "util:\n";
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_sym_audit_cli({"--layers", (empty / "layers.txt").string(),
                               empty.string()},
                              out, err),
            2);
  EXPECT_NE(err.str().find("no libxlf_"), std::string::npos);
  fs::remove_all(empty);
}

// ------------------------------------------------------------------ CLI

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "xlf_lint_cli";
    fs::remove_all(root_);
    fs::create_directories(root_ / "src" / "util");
    fs::create_directories(root_ / "src" / "ftl");
    write("layers.txt", "util:\nftl: util\n");
    write("src/util/ok.hpp", "#pragma once\nint fine();\n");
    write("src/ftl/ok.cpp", "#include \"src/util/ok.hpp\"\n");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    std::ofstream out(root_ / rel);
    out << text;
  }
  int run(const std::vector<std::string>& extra_args) {
    std::vector<std::string> args = {"--layers",
                                     (root_ / "layers.txt").string()};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    out_.str("");
    err_.str("");
    return run_cli(args, out_, err_);
  }

  fs::path root_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, CleanTreeExitsZeroWithNoOutput) {
  EXPECT_EQ(run({(root_ / "src").string()}), 0);
  EXPECT_EQ(out_.str(), "");
}

TEST_F(CliTest, SeededLayeringViolationExitsOneAndNamesTheSite) {
  write("src/util/scratch.hpp", "#include \"src/ftl/ok.hpp\"\n");
  EXPECT_EQ(run({(root_ / "src").string()}), 1);
  EXPECT_NE(out_.str().find("scratch.hpp:1: [layering]"), std::string::npos)
      << out_.str();
  EXPECT_NE(err_.str().find("1 finding"), std::string::npos);
}

TEST_F(CliTest, AllowCommentTurnsTheSameSeedClean) {
  write("src/util/scratch.hpp",
        "// xlf-lint: allow(layering)\n#include \"src/ftl/ok.hpp\"\n");
  EXPECT_EQ(run({(root_ / "src").string()}), 0) << out_.str();
}

TEST_F(CliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run({"--no-such-flag"}), 2);
  EXPECT_NE(err_.str().find("--help"), std::string::npos);
  EXPECT_EQ(run({}), 2);  // no paths
  EXPECT_EQ(run_cli({"--layers"}, out_, err_), 2);  // missing value
  // Unreadable layers file or target path: I/O error, not findings.
  EXPECT_EQ(run_cli({"--layers", "/nonexistent/layers.txt", "src"}, out_,
                    err_),
            2);
  EXPECT_EQ(run({(root_ / "no-such-dir").string()}), 2);
}

TEST_F(CliTest, ListRulesPrintsEveryRuleAndExitsZero) {
  EXPECT_EQ(run({"--list-rules"}), 0);
  for (const RuleInfo& rule : rule_infos()) {
    EXPECT_NE(out_.str().find(rule.name), std::string::npos) << rule.name;
  }
}

TEST_F(CliTest, SarifFileIsWrittenEvenWhenFindingsFailTheRun) {
  write("src/util/scratch.hpp", "#include \"src/ftl/ok.hpp\"\n");
  const fs::path sarif = root_ / "lint.sarif";
  EXPECT_EQ(run({"--sarif", sarif.string(), (root_ / "src").string()}), 1);
  const std::string doc = read_file(sarif);
  EXPECT_NE(doc.find("sarif-2.1.0"), std::string::npos);
  EXPECT_NE(doc.find("\"ruleId\": \"layering\""), std::string::npos);
  EXPECT_NE(doc.find("scratch.hpp"), std::string::npos);
}

TEST_F(CliTest, SarifOnACleanTreeHoldsAnEmptyResultSet) {
  const fs::path sarif = root_ / "lint.sarif";
  EXPECT_EQ(run({"--sarif", sarif.string(), (root_ / "src").string()}), 0);
  const std::string doc = read_file(sarif);
  EXPECT_NE(doc.find("\"name\": \"xlf_lint\""), std::string::npos);
  EXPECT_EQ(doc.find("\"ruleId\""), std::string::npos);
}

TEST_F(CliTest, SarifUsageAndIoErrorsExitTwo) {
  EXPECT_EQ(run({"--sarif"}), 2);  // missing value
  EXPECT_NE(err_.str().find("--sarif"), std::string::npos);
  // Unwritable output path: I/O error, not silently dropped.
  EXPECT_EQ(run({"--sarif", (root_ / "no-such-dir" / "x.sarif").string(),
                 (root_ / "src").string()}),
            2);
}

TEST_F(CliTest, ReportUnusedAllowsFlagSurfacesStaleSuppressions) {
  write("src/util/stale.hpp",
        "// xlf-lint: allow(hot-alloc)\nint fine();\n");
  // Without the flag the stale comment is invisible...
  EXPECT_EQ(run({(root_ / "src").string()}), 0) << out_.str();
  // ...with it, the run fails and names the comment.
  EXPECT_EQ(run({"--report-unused-allows", (root_ / "src").string()}), 1);
  EXPECT_NE(out_.str().find("[unused-allow]"), std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("stale.hpp:1"), std::string::npos);
}

}  // namespace
}  // namespace xlf::lint
