#include "tools/lint/lexer.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace xlf::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// String-literal prefixes: R"..." raw forms and their encoded
// variants, plus the encoded ordinary-literal prefixes.
bool raw_string_prefix(const std::string& id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}
bool string_prefix(const std::string& id) {
  return id == "u8" || id == "u" || id == "U" || id == "L";
}

// What a conditional directive's condition evaluates to: only the
// literal forms `0`/`false`/`1`/`true` are decidable without running
// the preprocessor; everything else keeps both arms live.
enum class CondVal { kFalse, kTrue, kUnknown };

class Lexer {
 public:
  explicit Lexer(const std::string& contents) {
    // getline shape: a trailing newline does not create an empty final
    // line — the same raw-line view the PR 7 stripper produced.
    std::istringstream stream(contents);
    std::string line;
    while (std::getline(stream, line)) {
      out_.code.emplace_back(line.size(), ' ');
      out_.raw.push_back(std::move(line));
    }
    out_.live.assign(out_.raw.size(), 1);
  }

  LexedFile run() {
    while (true) {
      skip_splices();
      if (at_end()) break;
      const char c = ch();
      if (c == '\n') {
        // An unspliced newline: the directive (if any) ends here.
        pp_ = false;
        fresh_line_ = true;
        bump();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        bump();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '#' && fresh_line_) {
        const std::string kw = peek_directive_keyword();
        if (conditional_keyword(kw)) {
          handle_conditional(kw, /*mark_dead=*/false);
          skip_dead_region();
          continue;
        }
        pp_ = true;
        emit_punct_char();
        continue;
      }
      if (ident_start(c)) {
        lex_identifier_or_literal_prefix();
        continue;
      }
      if (digit(c) || (c == '.' && digit(peek(1)))) {
        lex_number();
        continue;
      }
      if (c == '"') {
        lex_string('"', TokKind::kString);
        continue;
      }
      if (c == '\'') {
        lex_string('\'', TokKind::kChar);
        continue;
      }
      lex_punct();
    }
    return std::move(out_);
  }

 private:
  // ------------------------------------------------------ char cursor
  bool at_end() const { return line_ >= out_.raw.size(); }
  // Current char; '\n' at the end of each physical line.
  char ch() const {
    const std::string& l = out_.raw[line_];
    return col_ < l.size() ? l[col_] : '\n';
  }
  // Lookahead on the current physical line only ('\n' past its end).
  char peek(std::size_t ahead) const {
    const std::string& l = out_.raw[line_];
    return col_ + ahead < l.size() ? l[col_ + ahead] : '\n';
  }
  void bump() {
    if (at_end()) return;
    if (col_ < out_.raw[line_].size()) {
      ++col_;
      return;
    }
    ++line_;
    col_ = 0;
  }
  // A backslash immediately before the end of a physical line splices
  // the next line on (transparently — tokens, comments, strings and
  // directives all continue). Not applied inside raw strings.
  void skip_splices() {
    while (!at_end() && ch() == '\\' && peek(1) == '\n' &&
           col_ + 1 >= out_.raw[line_].size()) {
      ++line_;
      col_ = 0;
    }
  }

  void keep(char c) {  // copy a code char into the stripped view
    out_.code[line_][col_] = c;
    bump();
  }

  Token& start(TokKind kind) {
    out_.tokens.push_back(Token{kind, std::string(), int(line_) + 1,
                                int(col_), pp_});
    if (kind != TokKind::kComment) fresh_line_ = false;
    return out_.tokens.back();
  }

  // ------------------------------------------------------- token lexers
  void lex_line_comment() {
    Token& tok = start(TokKind::kComment);
    std::string text;
    while (!at_end()) {
      if (ch() == '\n') {
        // Spliced? Then the comment swallows the next physical line;
        // the check mirrors skip_splices (backslash was last char).
        if (!text.empty() && text.back() == '\\') {
          text.push_back('\n');
          bump();
          continue;
        }
        break;  // unspliced newline stays for the main loop
      }
      text.push_back(ch());
      bump();
    }
    tok.text = std::move(text);
  }

  void lex_block_comment() {
    Token& tok = start(TokKind::kComment);
    std::string text;
    text += ch();  // '/'
    bump();
    text += ch();  // '*'
    bump();
    while (!at_end()) {
      if (ch() == '*' && peek(1) == '/') {
        text += "*/";
        bump();
        bump();
        break;
      }
      text.push_back(ch());
      bump();
    }
    tok.text = std::move(text);
  }

  void lex_identifier_or_literal_prefix() {
    const std::size_t start_line = line_;
    const std::size_t start_col = col_;
    std::string text;
    while (!at_end()) {
      skip_splices();
      if (!ident_char(ch())) break;
      text.push_back(ch());
      keep(ch());
    }
    if (raw_string_prefix(text) && ch() == '"') {
      unkeep(start_line, start_col, text.size());
      lex_raw_string(start_line, start_col);
      return;
    }
    if (string_prefix(text) && (ch() == '"' || ch() == '\'')) {
      unkeep(start_line, start_col, text.size());
      lex_string(ch(), ch() == '"' ? TokKind::kString : TokKind::kChar);
      return;
    }
    Token& tok = start_at(TokKind::kIdentifier, start_line, start_col);
    tok.text = std::move(text);
  }

  void lex_number() {
    Token& tok = start(TokKind::kNumber);
    std::string text;
    char prev = '\0';
    while (!at_end()) {
      skip_splices();
      const char c = ch();
      const bool sep = c == '\'' && ident_char(peek(1));
      const bool exp_sign =
          (c == '+' || c == '-') &&
          (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P');
      if (!(ident_char(c) || c == '.' || sep || exp_sign)) break;
      text.push_back(c);
      prev = c;
      keep(c);
    }
    tok.text = std::move(text);
  }

  // Ordinary string or char literal. Contents (and delimiters) are
  // blanked; an escaped char is consumed blind; a backslash-newline
  // splices; an unspliced newline terminates the literal (it would be
  // ill-formed C++ — never let one stray quote blank the whole file).
  void lex_string(char delim, TokKind kind) {
    Token& tok = start(kind);
    tok.text = std::string(2, delim);
    bump();  // opening delimiter, blanked
    while (!at_end()) {
      const char c = ch();
      if (c == '\\') {
        if (peek(1) == '\n') {  // splice: literal continues next line
          skip_splices();
          if (ch() == '\\' && peek(1) != '\n') {
            bump();
            bump();
          }
          continue;
        }
        bump();  // the backslash
        bump();  // the escaped char
        continue;
      }
      if (c == delim || c == '\n') break;
      bump();
    }
    if (!at_end() && ch() == delim) bump();  // closing delimiter
  }

  // R"delim( ... )delim" — no escapes, no splices; the terminator is
  // the only way out. Contents blanked across any number of lines.
  void lex_raw_string(std::size_t start_line, std::size_t start_col) {
    Token& tok = start_at(TokKind::kString, start_line, start_col);
    tok.text = "\"\"";
    bump();  // opening quote
    std::string delim;
    while (!at_end() && ch() != '(' && ch() != '\n' && delim.size() < 20) {
      delim.push_back(ch());
      bump();
    }
    if (at_end() || ch() != '(') return;  // ill-formed; stop at the '('
    bump();
    const std::string terminator = ")" + delim + "\"";
    while (!at_end()) {
      const std::string& l = out_.raw[line_];
      const std::size_t hit = l.find(terminator, col_);
      if (hit != std::string::npos) {
        col_ = hit + terminator.size();
        return;
      }
      ++line_;
      col_ = 0;
    }
  }

  void lex_punct() {
    const char c = ch();
    if ((c == ':' && peek(1) == ':') || (c == '-' && peek(1) == '>')) {
      Token& tok = start(TokKind::kPunct);
      tok.text = {c, peek(1)};
      keep(c);
      keep(ch());
      return;
    }
    emit_punct_char();
  }

  void emit_punct_char() {
    Token& tok = start(TokKind::kPunct);
    tok.text = std::string(1, ch());
    keep(ch());
  }

  // --------------------------------------- preprocessor conditionals

  static bool conditional_keyword(const std::string& kw) {
    return kw == "if" || kw == "ifdef" || kw == "ifndef" || kw == "elif" ||
           kw == "else" || kw == "endif";
  }

  // The directive keyword after the `#` the cursor sits on, peeked on
  // the current physical line only (a splice between `#` and its
  // keyword is legal but never written).
  std::string peek_directive_keyword() const {
    const std::string& l = out_.raw[line_];
    std::size_t i = col_ + 1;
    while (i < l.size() && (l[i] == ' ' || l[i] == '\t')) ++i;
    std::string kw;
    while (i < l.size() && ident_char(l[i])) kw.push_back(l[i++]);
    return kw;
  }

  // `0` and `false` are definitively dead, `1` and `true` definitively
  // taken; any other condition (macros, defined(...), expressions) is
  // unknown, which keeps both arms live.
  static CondVal evaluate(const std::string& kw, std::string cond) {
    if (kw != "if") return CondVal::kUnknown;  // ifdef/ifndef
    const auto comment = std::min(cond.find("//"), cond.find("/*"));
    if (comment != std::string::npos) cond = cond.substr(0, comment);
    const auto first = cond.find_first_not_of(" \t");
    if (first == std::string::npos) return CondVal::kUnknown;
    const auto last = cond.find_last_not_of(" \t");
    cond = cond.substr(first, last - first + 1);
    if (cond == "0" || cond == "false") return CondVal::kFalse;
    if (cond == "1" || cond == "true") return CondVal::kTrue;
    return CondVal::kUnknown;
  }

  bool region_live() const {
    return conds_.empty() ||
           (conds_.back().parent_live && conds_.back().live);
  }

  // Consume the directive's logical line (cursor on its `#`), update
  // the conditional stack. `mark_dead` marks the consumed physical
  // lines dead — used for directives met while skipping a dead region.
  void handle_conditional(const std::string& kw, bool mark_dead) {
    std::string text;
    while (!at_end()) {
      if (ch() == '\\' && peek(1) == '\n' &&
          col_ + 1 >= out_.raw[line_].size()) {  // splice: keep reading
        if (mark_dead) out_.live[line_] = 0;
        ++line_;
        col_ = 0;
        continue;
      }
      if (ch() == '\n') break;
      text.push_back(ch());
      bump();
    }
    if (mark_dead && !at_end()) out_.live[line_] = 0;
    if (!at_end()) bump();  // step over the newline to the next line
    fresh_line_ = true;
    pp_ = false;

    // Split `#  keyword rest` (text starts at the '#').
    std::size_t i = 1;
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    while (i < text.size() && ident_char(text[i])) ++i;
    const std::string cond = text.substr(std::min(i, text.size()));

    if (kw == "if" || kw == "ifdef" || kw == "ifndef") {
      const CondVal val = evaluate(kw, cond);
      conds_.push_back(Cond{region_live(), val != CondVal::kFalse,
                            val == CondVal::kTrue});
      return;
    }
    if (conds_.empty()) return;  // stray elif/else/endif: ignore
    if (kw == "endif") {
      conds_.pop_back();
      return;
    }
    Cond& c = conds_.back();
    if (kw == "else") {
      c.live = !c.taken;
      return;
    }
    // elif: dead after a definitively-taken arm; otherwise evaluated
    // like a fresh #if (unknown keeps the arm live).
    const CondVal val = evaluate("if", cond);
    c.live = !c.taken && val != CondVal::kFalse;
    if (val == CondVal::kTrue && !c.taken) c.taken = true;
  }

  // While the region is dead, consume physical lines without lexing:
  // only conditional directives are interpreted (they restructure the
  // region); everything else — code, comments, other directives — is
  // marked dead and skipped.
  void skip_dead_region() {
    while (!region_live() && !at_end()) {
      const std::string& l = out_.raw[line_];
      std::size_t i = 0;
      while (i < l.size() && (l[i] == ' ' || l[i] == '\t')) ++i;
      if (i < l.size() && l[i] == '#') {
        col_ = i;
        const std::string kw = peek_directive_keyword();
        if (conditional_keyword(kw)) {
          handle_conditional(kw, /*mark_dead=*/true);
          continue;
        }
      }
      out_.live[line_] = 0;
      ++line_;
      col_ = 0;
    }
    fresh_line_ = true;
  }

  // A token started mid-scan (identifier that turned out to be a
  // string prefix) records its original position.
  Token& start_at(TokKind kind, std::size_t line, std::size_t col) {
    Token& tok = start(kind);
    tok.line = int(line) + 1;
    tok.col = int(col);
    return tok;
  }

  // Blank the already-kept chars of a literal prefix (R, u8, ...).
  // Prefixes never straddle a splice in practice; blank on their line.
  void unkeep(std::size_t line, std::size_t col, std::size_t count) {
    for (std::size_t i = 0; i < count && col + i < out_.code[line].size();
         ++i) {
      out_.code[line][col + i] = ' ';
    }
  }

  // One open conditional region. `taken` records whether some arm so
  // far evaluated definitively true (later arms are then dead).
  struct Cond {
    bool parent_live;
    bool live;
    bool taken;
  };

  LexedFile out_;
  std::size_t line_ = 0;
  std::size_t col_ = 0;
  bool pp_ = false;
  bool fresh_line_ = true;
  std::vector<Cond> conds_;
};

}  // namespace

LexedFile lex(const std::string& contents) { return Lexer(contents).run(); }

}  // namespace xlf::lint
