// Pin fixture: the emitter-TU rule (stem starts with "report") — an
// unordered container here is a finding, std::map is not.
#include <map>
#include <unordered_map>

std::unordered_map<int, int> histogram;  // finding: no-unordered-emit
std::map<int, int> ordered_histogram;
