// Pin fixture: one hit per determinism rule plus the constructs that
// must stay clean (comments, strings, static_assert, allow escapes).
#include <cstdint>

int seeded_stream();

int ambient() {
  std::random_device rd;  // finding: no-ambient-random
  int r = rand();         // finding: no-ambient-random
  return static_cast<int>(rd()) + r;
}

double wall() {
  auto t0 = std::chrono::steady_clock::now();  // finding: no-wall-clock
  return static_cast<double>(time(nullptr));   // finding: no-wall-clock
}

// rand() and time() in a comment are not findings.
const char* msg = "rand() and steady_clock in a string are fine";

double sim_time(int events);  // a name ending in time( is not the C time()

void contracts(int level) {
  assert(level < 4);  // finding: raw-assert
  static_assert(sizeof(int) == 4, "static_assert stays clean");
}

void escaped() {
  int r = rand();  // xlf-lint: allow(no-ambient-random)
  // xlf-lint: allow(raw-assert)
  assert(r >= 0);
  (void)r;
}

void ptr_order() {
  auto key = reinterpret_cast<std::uintptr_t>(msg);  // finding: no-ptr-order
  (void)key;
}
