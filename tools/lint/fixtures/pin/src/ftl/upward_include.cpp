// Pin fixture: layering hits. ftl may see util but not explore (an
// upward include) and never a sibling outside its closure.
#include "src/util/ok.hpp"
#include "src/explore/report_bait.hpp"
// xlf-lint: allow(layering)
#include "src/explore/report_bait.hpp"

void touch();
