// Adversarial fixture: raw string literals spanning physical lines.
// The PR 7 line-based stripper processed each line independently with
// no R"..." awareness, so every banned token inside these literals
// leaked into the code view (and the unbalanced quotes corrupted the
// stripping of the lines that followed). The token lexer must blank
// the whole literal — including across newlines and through a custom
// delimiter containing a quote — and report exactly ONE finding in
// this file: the genuine rand() in the last function.
#include <string>

const char* kBait = R"(
  std::random_device rd;
  time(nullptr);
  rand();
  srand(42);
  std::chrono::steady_clock::now();
  reinterpret_cast<std::uintptr_t>(nullptr);
  assert(banned tokens inside a raw string are never findings);
)";

const char* kDelimited = R"delim(
  an embedded "quote" and an embedded )" do not end this literal;
  gettimeofday(&tv, nullptr);
)delim";

int real_finding_after_raw_strings() {
  return rand();
}
