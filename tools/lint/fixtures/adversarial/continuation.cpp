// Adversarial fixture: backslash line continuations. A // comment
// whose physical line ends in a backslash logically continues onto
// the next line, and a string literal can be spliced the same way.
// The PR 7 stripper reset its comment/string state at every newline,
// so both continuations below leaked banned tokens into the code
// view. The token lexer must keep the comment/string state across
// the splice and report exactly ONE finding in this file: the
// genuine rand() in the last function.

// this whole comment continues onto the next physical line \
rand(); srand(7); std::random_device ghost; time(nullptr);

const char* kSpliced = "a string spliced across physical lines \
still a string: rand() time(nullptr) steady_clock";

#define XLF_FIXTURE_MACRO(x) \
  do {                       \
    (void)(x);               \
  } while (0)

int real_finding_after_continuations() {
  XLF_FIXTURE_MACRO(0);
  return rand();
}
