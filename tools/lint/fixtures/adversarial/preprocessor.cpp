// Adversarial fixture: banned tokens hidden behind preprocessor
// conditionals. Everything inside the literal-false regions must be
// invisible to every rule; the single genuine construct at the end is
// the only permitted finding.
#include <cstdlib>

#if 0
// A whole dead block of violations: none may be reported.
int dead_a = rand();
std::mt19937 dead_rng;
auto dead_t = std::chrono::steady_clock::now();
#endif

#if 1
int live_clean = 42;  // the taken arm is ordinary, clean code
#else
int dead_b = rand();  // dead #else arm of a taken #if 1
#endif

#if 0
#ifdef NESTED_MACRO
int dead_c = rand();  // nested conditional inside a dead region
#endif
int dead_d = time(nullptr);
#endif

#ifdef SOME_FEATURE
int both_arms_live_clean = 1;  // unknown condition: kept live, clean
#endif

int genuine = rand();  // the one real finding in this file
