#include "tools/lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "tools/lint/callgraph.hpp"
#include "tools/lint/lexer.hpp"
#include "tools/lint/rules.hpp"
#include "tools/lint/sarif.hpp"

namespace xlf::lint {
namespace {

// ---------------------------------------------------------------- rules

constexpr const char* kLayering = "layering";
constexpr const char* kNoRandom = "no-ambient-random";
constexpr const char* kNoWallClock = "no-wall-clock";
constexpr const char* kNoUnorderedEmit = "no-unordered-emit";
constexpr const char* kNoPtrOrder = "no-ptr-order";
constexpr const char* kRawAssert = "raw-assert";
constexpr const char* kHotAlloc = "hot-alloc";
constexpr const char* kLockOrder = "lock-order";
constexpr const char* kAckOrder = "ack-order";
constexpr const char* kArenaRef = "arena-ref";
constexpr const char* kUnusedAllow = "unused-allow";

const std::vector<RuleInfo> kRules = {
    {kLayering,
     "src/<layer>/ may only include its own layer plus the transitive "
     "closure of its layers.txt dependencies"},
    {kNoRandom,
     "ambient randomness (std::random_device, rand, srand) bypasses the "
     "seeded xlf::Rng streams and breaks reproducibility"},
    {kNoWallClock,
     "wall-clock reads (time(), clock(), gettimeofday, std::chrono "
     "system/steady/high_resolution clocks) make output run-dependent"},
    {kNoUnorderedEmit,
     "unordered_map/unordered_set in a report/*_csv/*_json emitter TU: "
     "hash iteration order is not part of the determinism contract"},
    {kNoPtrOrder,
     "ordering by pointer value (std::less<T*>, reinterpret_cast to "
     "uintptr_t) depends on allocation addresses, not logical state"},
    {kRawAssert,
     "raw assert() compiles out under NDEBUG; use XLF_EXPECT / "
     "XLF_EXPECT_MSG / XLF_ENSURE from src/util/expect.hpp"},
    {kHotAlloc,
     "allocation reachable from a '// xlf: hot' function: hot paths must "
     "run allocation-free after warm-up (arena and pool reuse only)"},
    {kLockOrder,
     "lock discipline: no nested mutex acquisition, no inconsistent "
     "cross-TU lock ordering, no new locks in src/nand or src/sim "
     "(determinism comes from ordering, not locking)"},
    {kAckOrder,
     "crash-ack ordering: no path from a '// xlf: ack' completion site "
     "may reach a NAND mutation (program_page / erase_block / "
     "write_page_meta) without passing a '// xlf: durable' commit "
     "function on the cross-TU call graph"},
    {kArenaRef,
     "arena element lifetime: a reference/pointer/iterator bound into a "
     "'// xlf: arena(grows)' declaration must not be used across a "
     "potentially-growing call (try_issue / push_back / emplace_back / "
     "resize / grow) on that arena"},
    {kUnusedAllow,
     "stale suppression: an '// xlf-lint: allow(...)' comment that "
     "suppresses nothing, or names an unknown rule, hides nothing and "
     "rots; reported under --report-unused-allows"},
};

int rule_index(const std::string& rule) {
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    if (rule == kRules[i].name) return static_cast<int>(i);
  }
  return static_cast<int>(kRules.size());
}

// `// xlf-lint: allow(rule)` (comma-separated rules accepted) on the
// finding's own line, or alone on the line directly above it.
const std::regex kAllowRe(R"(//\s*xlf-lint:\s*allow\(([^)]*)\))");

bool allow_matches(const std::string& raw_line, const std::string& rule) {
  std::smatch match;
  if (!std::regex_search(raw_line, match, kAllowRe)) return false;
  std::istringstream list(match[1].str());
  std::string name;
  while (std::getline(list, name, ',')) {
    const auto begin = name.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const auto end = name.find_last_not_of(" \t");
    if (name.substr(begin, end - begin + 1) == rule) return true;
  }
  return false;
}

// One lexed, split TU of a lint_files() call.
struct TuAnalysis {
  std::string path;
  std::string layer;
  bool emitter = false;
  LexedFile lx;
  std::vector<Token> code;      // structural tokens: no comments, no pp
  std::vector<Token> comments;  // comments, for the marker scans
};

// Shared state of one lint_files() call: every TU, plus the record of
// which allow comments actually suppressed a finding — keyed by
// (tu, 0-based line of the comment, rule) — so the
// --report-unused-allows pass can report the rest as stale.
struct LintState {
  std::vector<TuAnalysis> tus;
  std::set<std::tuple<std::size_t, std::size_t, std::string>> used_allows;
};

bool is_allowed(LintState& st, std::size_t tu, std::size_t line_index,
                const std::string& rule) {
  const std::vector<std::string>& raw = st.tus[tu].lx.raw;
  if (line_index >= raw.size()) return false;
  if (allow_matches(raw[line_index], rule)) {
    st.used_allows.emplace(tu, line_index, rule);
    return true;
  }
  if (line_index > 0) {
    const std::string& above = raw[line_index - 1];
    // Only a line that is nothing but the allow comment arms the next
    // line; an allow trailing other code covers that code alone.
    const auto first = above.find_first_not_of(" \t");
    if (first != std::string::npos && above.compare(first, 2, "//") == 0 &&
        allow_matches(above, rule)) {
      st.used_allows.emplace(tu, line_index - 1, rule);
      return true;
    }
  }
  return false;
}

// ------------------------------------------------------- rule patterns

const std::regex kIncludeRe(R"(^\s*#\s*include\s+"src/([A-Za-z0-9_]+)/)");
const std::regex kRandomRe(R"(\brandom_device\b|\bs?rand\s*\()");
const std::regex kWallClockRe(
    R"(\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b|\btime\s*\(|\bclock\s*\(|\bgettimeofday\b)");
const std::regex kUnorderedRe(R"(\bunordered_(map|set|multimap|multiset)\b)");
const std::regex kPtrOrderRe(
    R"(std::(less|greater)\s*<[^<>;]*\*[^<>;]*>|reinterpret_cast<\s*(std::)?uintptr_t\s*>)");
const std::regex kAssertRe(R"(\bassert\s*\()");
const std::regex kHotMarkRe(R"(\bxlf:\s*hot\b)");
// The hot closure's barrier: a definition annotated `// xlf: cold` is
// setup/reconfiguration/error-path code by reviewed contract, so the
// hot BFS treats it as absent (like `durable` for ack-order). Without
// it, name-level resolution drags report and warm-up code into the
// closure through collisions on common member names (front, add,
// require, to_string).
const std::regex kColdMarkRe(R"(\bxlf:\s*cold\b)");

// ------------------------------------------------ structural analysis
//
// The hot-alloc, lock-order, ack-order, and arena-ref families work
// on the token stream, not on line patterns. The unit of analysis is
// the scope-qualified function definition from the whole-program call
// graph (tools/lint/callgraph.hpp); lambdas are deliberately NOT
// definitions — their tokens belong to the enclosing definition, so
// an allocation inside an event closure is charged to the function
// that builds the closure. Hot reachability is cross-TU: BFS from the
// `// xlf: hot` definitions over resolved edges, so a hot caller in
// src/sim taints the FTL entry points it calls in src/ftl.

// The allocation ban-list scanned inside hot bodies. Returns the
// construct's display name, or "" when the token is harmless.
std::string hot_banned(const std::vector<Token>& code, std::size_t t,
                       std::size_t limit) {
  const Token& tok = code[t];
  if (tok.kind != TokKind::kIdentifier) return "";
  const std::string& s = tok.text;
  const bool called = t + 1 < limit && code[t + 1].text == "(";
  const bool std_qualified = t >= 2 && code[t - 1].text == "::" &&
                             code[t - 2].text == "std";
  if (s == "new") return "new";
  if ((s == "malloc" || s == "calloc" || s == "realloc" || s == "strdup") &&
      called) {
    return s + "()";
  }
  if (s == "make_unique" || s == "make_shared") return "std::" + s;
  if ((s == "push_back" || s == "emplace_back" || s == "resize" ||
       s == "reserve") &&
      called) {
    return s + "()";
  }
  if (s == "function" && std_qualified) return "std::function";
  if (s == "string" && std_qualified) return "std::string";
  if (s == "to_string" && called && std_qualified) return "std::to_string";
  return "";
}

void scan_hot_allocs(LintState& st, const CallGraph& graph,
                     const CallGraph::Reach& reach,
                     std::vector<Finding>& findings) {
  const std::vector<Def>& defs = graph.defs();
  for (std::size_t d = 0; d < defs.size(); ++d) {
    if (reach.parent[d] == CallGraph::npos) continue;
    const Def& def = defs[d];
    const TuAnalysis& tu = st.tus[def.tu];
    const std::string& root = defs[reach.root[d]].qual;
    for (std::size_t t = def.open_tok + 1; t < def.close_tok; ++t) {
      const std::string what = hot_banned(tu.code, t, def.close_tok);
      if (what.empty()) continue;
      const std::size_t line_index = tu.code[t].line - 1;
      if (is_allowed(st, def.tu, line_index, kHotAlloc)) continue;
      findings.push_back(Finding{
          tu.path, tu.code[t].line, kHotAlloc,
          "'" + what + "' in '" + def.qual + "' (hot via '" + root +
              "'): hot paths must not allocate after warm-up; hoist the "
              "allocation into setup/arena code, or mark a documented "
              "arena-growth site with // xlf-lint: allow(hot-alloc)"});
    }
  }
}

// ------------------------------------------------------ lock discipline

// One mutex acquisition inside some function body.
struct HeldLock {
  std::string mutex;
  int depth = 0;  // brace depth at the acquisition, for scope-exit pops
};

// A `first before second` ordering observed at file/line; collected
// across every TU of a lint_files() call for the inversion check.
struct OrderSite {
  std::size_t file = 0;
  int line = 0;
};
using OrderMap =
    std::map<std::pair<std::string, std::string>, std::vector<OrderSite>>;

bool lock_class(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

bool mutex_class(const std::string& s) {
  return s == "mutex" || s == "shared_mutex" || s == "recursive_mutex" ||
         s == "timed_mutex" || s == "recursive_timed_mutex" ||
         s == "shared_timed_mutex";
}

// Split a guard's constructor arguments at top-level commas and name
// each acquired mutex by the last identifier of its expression
// (`state_.big_mutex` and `*big_mutex` both name `big_mutex`). An
// argument list mentioning defer_lock / try_to_lock means the guard
// does not acquire here; adopt_lock means the lock is already held.
std::vector<std::string> guard_mutexes(const std::vector<Token>& code,
                                       std::size_t args_open,
                                       std::size_t args_close) {
  std::vector<std::string> names;
  std::string last_ident;
  int depth = 0;
  for (std::size_t t = args_open + 1; t <= args_close; ++t) {
    const Token& tok = code[t];
    const bool top_comma =
        t == args_close ||
        (tok.kind == TokKind::kPunct && tok.text == "," && depth == 0);
    if (top_comma) {
      if (!last_ident.empty()) names.push_back(last_ident);
      last_ident.clear();
      continue;
    }
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "(" || tok.text == "<" || tok.text == "{") ++depth;
      if (tok.text == ")" || tok.text == ">" || tok.text == "}") --depth;
      continue;
    }
    if (tok.kind == TokKind::kIdentifier) {
      if (tok.text == "defer_lock" || tok.text == "try_to_lock" ||
          tok.text == "adopt_lock") {
        return {};
      }
      last_ident = tok.text;
    }
  }
  return names;
}

void analyze_locks(LintState& st, std::size_t file_index,
                   const CallGraph& graph, OrderMap& order,
                   std::vector<Finding>& findings) {
  const TuAnalysis& tu = st.tus[file_index];
  const auto report_nested = [&](const std::string& outer,
                                 const std::string& inner, int line,
                                 const std::string& fn) {
    const std::size_t line_index = line - 1;
    if (is_allowed(st, file_index, line_index, kLockOrder)) return;
    findings.push_back(Finding{
        tu.path, line, kLockOrder,
        "mutex '" + inner + "' acquired while '" + outer +
            "' is already held in '" + fn +
            "'; nested acquisition invites deadlock — narrow the critical "
            "section to one lock, or justify with // xlf-lint: "
            "allow(lock-order)"});
  };

  for (const Def& def : graph.defs()) {
    if (def.tu != file_index) continue;
    std::vector<HeldLock> held;
    int depth = 0;
    for (std::size_t t = def.open_tok + 1; t < def.close_tok; ++t) {
      const Token& tok = tu.code[t];
      if (tok.kind == TokKind::kPunct) {
        if (tok.text == "{") ++depth;
        if (tok.text == "}") {
          --depth;
          while (!held.empty() && held.back().depth > depth) held.pop_back();
        }
        continue;
      }
      if (tok.kind != TokKind::kIdentifier) continue;

      // RAII guards: std::lock_guard<...> name(m) / std::scoped_lock
      // name(a, b) / brace-init variants.
      if (lock_class(tok.text)) {
        std::size_t k = t + 1;
        if (k < def.close_tok && tu.code[k].text == "<") {
          int angles = 0;
          for (; k < def.close_tok; ++k) {
            if (tu.code[k].text == "<") ++angles;
            if (tu.code[k].text == ">" && --angles == 0) break;
          }
          ++k;
        }
        if (k < def.close_tok && tu.code[k].kind == TokKind::kIdentifier) {
          ++k;  // the guard variable's name
        }
        if (k >= def.close_tok ||
            (tu.code[k].text != "(" && tu.code[k].text != "{")) {
          continue;  // a type mention, not a construction
        }
        const bool brace = tu.code[k].text == "{";
        const std::size_t close = match_punct(tu.code, k, brace ? "{" : "(",
                                              brace ? "}" : ")");
        if (close == std::string::npos || close > def.close_tok) continue;
        for (const std::string& m : guard_mutexes(tu.code, k, close)) {
          if (!held.empty()) {
            for (const HeldLock& outer : held) {
              order[{outer.mutex, m}].push_back(
                  OrderSite{file_index, tok.line});
            }
            report_nested(held.back().mutex, m, tok.line, def.name);
          }
          held.push_back(HeldLock{m, depth});
        }
        t = close;
        continue;
      }

      // Manual m.lock() / m->lock() and the matching unlock().
      if ((tok.text == "lock" || tok.text == "unlock") && t >= 2 &&
          (tu.code[t - 1].text == "." || tu.code[t - 1].text == "->") &&
          tu.code[t - 2].kind == TokKind::kIdentifier &&
          t + 1 < def.close_tok && tu.code[t + 1].text == "(") {
        const std::string m = tu.code[t - 2].text;
        if (tok.text == "unlock") {
          for (auto it = held.rbegin(); it != held.rend(); ++it) {
            if (it->mutex == m) {
              held.erase(std::next(it).base());
              break;
            }
          }
          continue;
        }
        if (!held.empty()) {
          for (const HeldLock& outer : held) {
            order[{outer.mutex, m}].push_back(OrderSite{file_index, tok.line});
          }
          report_nested(held.back().mutex, m, tok.line, def.name);
        }
        held.push_back(HeldLock{m, depth});
        continue;
      }
    }
  }

  // New locks in the replayed layers are suspect by default: the data
  // plane is sharded so every piece of state has one owner, and a
  // mutex usually papers over a missing ordering.
  if (tu.layer == "nand" || tu.layer == "sim") {
    for (std::size_t t = 0; t < tu.code.size(); ++t) {
      if (!mutex_class(tu.code[t].text) ||
          tu.code[t].kind != TokKind::kIdentifier) {
        continue;
      }
      if (t + 1 >= tu.code.size() ||
          tu.code[t + 1].kind != TokKind::kIdentifier) {
        continue;  // template argument or parameter type, not a member
      }
      const std::size_t line_index = tu.code[t].line - 1;
      if (is_allowed(st, file_index, line_index, kLockOrder)) continue;
      findings.push_back(Finding{
          tu.path, tu.code[t].line, kLockOrder,
          "new std::" + tu.code[t].text + " '" + tu.code[t + 1].text +
              "' declared in layer '" + tu.layer +
              "': nand/sim stay lock-free by design (determinism comes "
              "from event ordering); move synchronization to the host "
              "boundary or justify with // xlf-lint: allow(lock-order)"});
    }
  }
}

void report_inversions(LintState& st, const OrderMap& order,
                       std::vector<Finding>& findings) {
  const std::vector<TuAnalysis>& tus = st.tus;
  const auto first_unallowed = [&](const std::vector<OrderSite>& sites)
      -> const OrderSite* {
    for (const OrderSite& s : sites) {
      if (!is_allowed(st, s.file, s.line - 1, kLockOrder)) return &s;
    }
    return nullptr;
  };
  for (const auto& [pair, sites] : order) {
    const auto& [a, b] = pair;
    if (a >= b) continue;  // handle each unordered pair once, via (a, b)
    const auto rev = order.find({b, a});
    if (rev == order.end()) continue;
    const OrderSite* fwd_site = first_unallowed(sites);
    const OrderSite* rev_site = first_unallowed(rev->second);
    const auto report = [&](const OrderSite* site, const std::string& outer,
                            const std::string& inner,
                            const OrderSite& other) {
      if (site == nullptr) return;
      findings.push_back(Finding{
          tus[site->file].path, site->line, kLockOrder,
          "lock order inverted: '" + inner + "' is acquired under '" +
              outer + "' here but the opposite order appears at " +
              tus[other.file].path + ":" + std::to_string(other.line) +
              "; pick one global acquisition order"});
    };
    report(fwd_site, a, b, rev->second.front());
    report(rev_site, b, a, sites.front());
  }
}

// --report-unused-allows: every `// xlf-lint: allow(...)` comment must
// have suppressed at least one finding in this run (recorded by
// is_allowed), and every name in its list must be a real rule. Runs
// LAST so all analyses have had their chance to consume suppressions;
// its own findings are deliberately not suppressible — deleting the
// stale comment is the fix.
void scan_unused_allows(const LintState& st, std::vector<Finding>& findings) {
  for (std::size_t ti = 0; ti < st.tus.size(); ++ti) {
    const std::vector<std::string>& raw = st.tus[ti].lx.raw;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      std::smatch match;
      if (!std::regex_search(raw[i], match, kAllowRe)) continue;
      std::istringstream list(match[1].str());
      std::string name;
      while (std::getline(list, name, ',')) {
        const auto begin = name.find_first_not_of(" \t");
        if (begin == std::string::npos) continue;
        const auto end = name.find_last_not_of(" \t");
        name = name.substr(begin, end - begin + 1);
        if (!is_rule_name(name)) {
          findings.push_back(Finding{
              st.tus[ti].path, static_cast<int>(i + 1), kUnusedAllow,
              "allow list names unknown rule '" + name +
                  "': the suppression is a no-op (see --list-rules for "
                  "valid names); fix the spelling or delete it"});
          continue;
        }
        if (st.used_allows.count({ti, i, name}) == 0) {
          findings.push_back(Finding{
              st.tus[ti].path, static_cast<int>(i + 1), kUnusedAllow,
              "stale suppression: allow(" + name +
                  ") matched no finding in this run; the code it excused "
                  "has moved or been fixed — delete the comment so future "
                  "findings are not silently absorbed"});
        }
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_infos() { return kRules; }

bool is_rule_name(const std::string& name) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return name == r.name; });
}

std::string format_finding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

// ----------------------------------------------------------- LayerGraph

LayerGraph LayerGraph::parse(const std::string& text) {
  LayerGraph graph;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("layers.txt line " + std::to_string(line_no) +
                               ": expected 'layer: dep dep ...'");
    }
    std::string layer = line.substr(first, colon - first);
    const auto layer_end = layer.find_last_not_of(" \t");
    layer = layer.substr(0, layer_end + 1);
    if (graph.direct_.count(layer) != 0) {
      throw std::runtime_error("layers.txt: duplicate layer '" + layer + "'");
    }
    std::vector<std::string> deps;
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.push_back(dep);
    graph.direct_.emplace(layer, std::move(deps));
  }
  // Every dependency must itself be a declared layer.
  for (const auto& [layer, deps] : graph.direct_) {
    for (const std::string& dep : deps) {
      if (graph.direct_.count(dep) == 0) {
        throw std::runtime_error("layers.txt: layer '" + layer +
                                 "' depends on undeclared layer '" + dep +
                                 "'");
      }
    }
  }
  // Transitive closure by DFS; a layer revisited while still on the
  // stack is a cycle (a DAG is the whole point of the file).
  enum class Mark { kUnvisited, kOnStack, kDone };
  std::map<std::string, Mark> marks;
  for (const auto& [layer, deps] : graph.direct_) marks[layer] = Mark::kUnvisited;
  const std::function<void(const std::string&)> visit =
      [&](const std::string& layer) {
        if (marks[layer] == Mark::kDone) return;
        if (marks[layer] == Mark::kOnStack) {
          throw std::runtime_error("layers.txt: dependency cycle through '" +
                                   layer + "'");
        }
        marks[layer] = Mark::kOnStack;
        std::set<std::string>& allowed = graph.allowed_[layer];
        allowed.insert(layer);
        for (const std::string& dep : graph.direct_.at(layer)) {
          visit(dep);
          const std::set<std::string>& below = graph.allowed_.at(dep);
          allowed.insert(below.begin(), below.end());
        }
        marks[layer] = Mark::kDone;
      };
  for (const auto& [layer, deps] : graph.direct_) visit(layer);
  return graph;
}

LayerGraph LayerGraph::parse_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("cannot open layers file " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse(text.str());
}

const std::set<std::string>& LayerGraph::allowed(
    const std::string& layer) const {
  const auto it = allowed_.find(layer);
  if (it == allowed_.end()) {
    throw std::runtime_error("unknown layer '" + layer + "'");
  }
  return it->second;
}

bool LayerGraph::has_layer(const std::string& layer) const {
  return direct_.count(layer) != 0;
}

// -------------------------------------------------------------- linting

std::string layer_of(const std::string& path) {
  const std::string generic = std::filesystem::path(path).generic_string();
  std::smatch match;
  static const std::regex kLayerRe(R"((^|/)src/([A-Za-z0-9_]+)/)");
  if (std::regex_search(generic, match, kLayerRe)) return match[2].str();
  return "";
}

bool is_emitter_tu(const std::string& path) {
  const std::string stem = std::filesystem::path(path).stem().string();
  return stem.rfind("report", 0) == 0 ||
         stem.find("_csv") != std::string::npos ||
         stem.find("_json") != std::string::npos;
}

namespace {

// The six PR 7 line rules, verbatim, over the lexer's stripped view.
// Their findings are pinned byte-identical by fixtures/pin.
void lint_lines(LintState& st, std::size_t tu_index, const LayerGraph& graph,
                std::vector<Finding>& findings) {
  const TuAnalysis& tu = st.tus[tu_index];
  const auto report = [&](std::size_t index, const char* rule,
                          std::string message) {
    if (is_allowed(st, tu_index, index, rule)) return;
    findings.push_back(Finding{tu.path, static_cast<int>(index + 1), rule,
                               std::move(message)});
  };

  for (std::size_t i = 0; i < tu.lx.code.size(); ++i) {
    const std::string& code = tu.lx.code[i];
    std::smatch match;

    // Includes are matched on the RAW line: the lexer blanks string
    // literals, and the include path is lexically one. The live[] gate
    // keeps includes inside `#if 0` regions out (the code view is
    // already blank there; the raw line is not).
    if (!tu.layer.empty() && graph.has_layer(tu.layer) && tu.lx.live[i] &&
        std::regex_search(tu.lx.raw[i], match, kIncludeRe)) {
      const std::string target = match[1].str();
      if (graph.allowed(tu.layer).count(target) == 0) {
        report(i, kLayering,
               "layer '" + tu.layer + "' must not include \"src/" + target +
                   "/...\": '" + target +
                   "' is not in its dependency closure (see "
                   "tools/lint/layers.txt); move the shared code to a lower "
                   "layer or invert the dependency");
      }
    }
    if (std::regex_search(code, kRandomRe)) {
      report(i, kNoRandom,
             "ambient randomness breaks the seeded-stream reproducibility "
             "contract; draw from an xlf::Rng forked from the experiment "
             "seed instead");
    }
    if (std::regex_search(code, kWallClockRe)) {
      report(i, kNoWallClock,
             "wall-clock time makes output differ run to run; use the "
             "simulated clock (EventQueue time, FTL logical clock) or take "
             "the timestamp as a parameter");
    }
    if (tu.emitter && std::regex_search(code, kUnorderedRe)) {
      report(i, kNoUnorderedEmit,
             "emitter TUs must not touch unordered containers: hash "
             "iteration order varies across libstdc++ versions and seeds; "
             "use std::map or sort into a vector before emitting");
    }
    if (std::regex_search(code, kPtrOrderRe)) {
      report(i, kNoPtrOrder,
             "pointer-value ordering follows the allocator, not the model; "
             "sort by a stable id (block id, LBA, queue id) instead");
    }
    if (std::regex_search(code, kAssertRe)) {
      report(i, kRawAssert,
             "raw assert() is compiled out in NDEBUG/Release builds, where "
             "the determinism CI runs; use XLF_EXPECT / XLF_EXPECT_MSG / "
             "XLF_ENSURE (src/util/expect.hpp) so the contract always "
             "holds");
    }
  }
}

}  // namespace

std::vector<Finding> lint_files(const std::vector<FileInput>& files,
                                const LayerGraph& graph,
                                const LintOptions& options) {
  LintState st;
  st.tus.reserve(files.size());
  std::vector<Finding> findings;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    TuAnalysis tu;
    tu.path = files[fi].path;
    tu.layer = layer_of(tu.path);
    tu.emitter = is_emitter_tu(tu.path);
    tu.lx = lex(files[fi].contents);
    for (const Token& tok : tu.lx.tokens) {
      if (tok.kind == TokKind::kComment) {
        tu.comments.push_back(tok);
      } else if (!tok.preprocessor) {
        tu.code.push_back(tok);
      }
    }
    st.tus.push_back(std::move(tu));
  }

  for (std::size_t fi = 0; fi < st.tus.size(); ++fi) {
    lint_lines(st, fi, graph, findings);
  }

  // The whole-program passes: one call graph over every TU at once.
  std::vector<const std::vector<Token>*> codes;
  codes.reserve(st.tus.size());
  for (const TuAnalysis& tu : st.tus) codes.push_back(&tu.code);
  const CallGraph cg = CallGraph::build(codes);

  std::vector<std::size_t> hot_roots;
  std::vector<char> cold(cg.defs().size(), 0);
  for (std::size_t d = 0; d < cg.defs().size(); ++d) {
    const Def& def = cg.defs()[d];
    if (def_has_marker(def, st.tus[def.tu].comments, kColdMarkRe)) {
      cold[d] = 1;
    } else if (def_has_marker(def, st.tus[def.tu].comments, kHotMarkRe)) {
      hot_roots.push_back(d);
    }
  }
  scan_hot_allocs(st, cg, cg.reach(hot_roots, &cold), findings);

  OrderMap order;
  for (std::size_t fi = 0; fi < st.tus.size(); ++fi) {
    analyze_locks(st, fi, cg, order, findings);
  }
  report_inversions(st, order, findings);

  std::vector<TuView> views;
  views.reserve(st.tus.size());
  for (const TuAnalysis& tu : st.tus) {
    views.push_back(TuView{&tu.path, &tu.lx, &tu.code, &tu.comments});
  }
  const AllowFn allowed = [&st](std::size_t tu, std::size_t line,
                                const std::string& rule) {
    return is_allowed(st, tu, line, rule);
  };
  check_ack_order(views, cg, allowed, findings);
  check_arena_ref(views, allowed, findings);

  if (options.report_unused_allows) scan_unused_allows(st, findings);

  // One global order regardless of which analysis produced a finding:
  // by file, then line, then the rule's --list-rules position. This
  // reproduces the PR 7 per-line rule order exactly.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return rule_index(a.rule) < rule_index(b.rule);
                   });
  return findings;
}

std::vector<Finding> lint_files(const std::vector<FileInput>& files,
                                const LayerGraph& graph) {
  return lint_files(files, graph, LintOptions{});
}

std::vector<Finding> lint_file(const std::string& path,
                               const std::string& contents,
                               const LayerGraph& graph) {
  return lint_files({FileInput{path, contents}}, graph);
}

std::vector<Finding> lint_tree(const std::string& root,
                               const LayerGraph& graph,
                               const LintOptions& options) {
  namespace fs = std::filesystem;
  if (!fs::exists(root)) {
    throw std::runtime_error("no such file or directory: " + root);
  }
  std::vector<std::string> paths;
  if (fs::is_directory(root)) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        paths.push_back(entry.path().generic_string());
      }
    }
    // Directory iteration order is filesystem-dependent; finding order
    // is part of the CLI contract, so sort.
    std::sort(paths.begin(), paths.end());
  } else {
    paths.push_back(root);
  }
  std::vector<FileInput> inputs;
  inputs.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream file(path);
    if (!file) {
      throw std::runtime_error("cannot read " + path);
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    inputs.push_back(FileInput{path, contents.str()});
  }
  return lint_files(inputs, graph, options);
}

std::vector<Finding> lint_tree(const std::string& root,
                               const LayerGraph& graph) {
  return lint_tree(root, graph, LintOptions{});
}

// ------------------------------------------------------------------ CLI

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  std::string layers_path = "tools/lint/layers.txt";
  std::string sarif_path;
  LintOptions options;
  std::vector<std::string> targets;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      out << "usage: xlf_lint [--layers FILE] [--sarif FILE]\n"
             "                [--report-unused-allows] [--list-rules] "
             "PATH...\n"
             "  --layers FILE   layer DAG (default tools/lint/layers.txt)\n"
             "  --sarif FILE    also write findings as SARIF 2.1.0 to FILE\n"
             "  --report-unused-allows\n"
             "                  report stale or unknown-rule allow() "
             "comments\n"
             "  --list-rules    print every rule with its summary and exit\n"
             "  PATH            files or directories (typically src/)\n"
             "exit codes: 0 clean, 1 findings, 2 usage or I/O error\n"
             "suppress one finding: // xlf-lint: allow(<rule>)\n";
      return 0;
    }
    if (arg == "--list-rules") {
      for (const RuleInfo& rule : rule_infos()) {
        out << rule.name << ": " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--layers") {
      if (i + 1 >= args.size()) {
        err << "xlf_lint: missing value for --layers\n";
        return 2;
      }
      layers_path = args[++i];
      continue;
    }
    if (arg == "--sarif") {
      if (i + 1 >= args.size()) {
        err << "xlf_lint: missing value for --sarif\n";
        return 2;
      }
      sarif_path = args[++i];
      continue;
    }
    if (arg == "--report-unused-allows") {
      options.report_unused_allows = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      err << "xlf_lint: unknown flag '" << arg << "' (try --help)\n";
      return 2;
    }
    targets.push_back(arg);
  }
  if (targets.empty()) {
    err << "xlf_lint: no paths given (try `xlf_lint src`)\n";
    return 2;
  }
  try {
    const LayerGraph graph = LayerGraph::parse_file(layers_path);
    std::vector<Finding> findings;
    for (const std::string& target : targets) {
      std::vector<Finding> tree = lint_tree(target, graph, options);
      findings.insert(findings.end(), std::make_move_iterator(tree.begin()),
                      std::make_move_iterator(tree.end()));
    }
    for (const Finding& finding : findings) {
      out << format_finding(finding) << "\n";
    }
    if (!sarif_path.empty()) {
      std::ofstream sarif(sarif_path);
      if (!sarif) {
        err << "xlf_lint: cannot write " << sarif_path << "\n";
        return 2;
      }
      sarif << to_sarif(findings);
    }
    if (!findings.empty()) {
      err << "xlf_lint: " << findings.size() << " finding"
          << (findings.size() == 1 ? "" : "s") << "\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    err << "xlf_lint: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace xlf::lint
