#include "tools/lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <ostream>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace xlf::lint {
namespace {

// ---------------------------------------------------------------- rules

constexpr const char* kLayering = "layering";
constexpr const char* kNoRandom = "no-ambient-random";
constexpr const char* kNoWallClock = "no-wall-clock";
constexpr const char* kNoUnorderedEmit = "no-unordered-emit";
constexpr const char* kNoPtrOrder = "no-ptr-order";
constexpr const char* kRawAssert = "raw-assert";

const std::vector<RuleInfo> kRules = {
    {kLayering,
     "src/<layer>/ may only include its own layer plus the transitive "
     "closure of its layers.txt dependencies"},
    {kNoRandom,
     "ambient randomness (std::random_device, rand, srand) bypasses the "
     "seeded xlf::Rng streams and breaks reproducibility"},
    {kNoWallClock,
     "wall-clock reads (time(), clock(), gettimeofday, std::chrono "
     "system/steady/high_resolution clocks) make output run-dependent"},
    {kNoUnorderedEmit,
     "unordered_map/unordered_set in a report/*_csv/*_json emitter TU: "
     "hash iteration order is not part of the determinism contract"},
    {kNoPtrOrder,
     "ordering by pointer value (std::less<T*>, reinterpret_cast to "
     "uintptr_t) depends on allocation addresses, not logical state"},
    {kRawAssert,
     "raw assert() compiles out under NDEBUG; use XLF_EXPECT / "
     "XLF_EXPECT_MSG / XLF_ENSURE from src/util/expect.hpp"},
};

// Lines of a file with comments and string/char literals blanked out
// (same length, same line count), so a banned token inside a comment
// or a log string is never a finding. Raw line text is kept alongside
// for the allow-comment scan.
struct FileView {
  std::vector<std::string> raw;
  std::vector<std::string> code;  // literals/comments replaced by spaces
};

FileView strip(const std::string& contents) {
  FileView view;
  std::string line;
  std::istringstream stream(contents);
  bool in_block_comment = false;
  while (std::getline(stream, line)) {
    std::string code(line.size(), ' ');
    bool in_string = false;
    bool in_char = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      if (in_block_comment) {
        if (c == '*' && next == '/') {
          in_block_comment = false;
          ++i;
        }
      } else if (in_string || in_char) {
        if (c == '\\') {
          ++i;  // escaped char stays blanked
        } else if (in_string && c == '"') {
          in_string = false;
        } else if (in_char && c == '\'') {
          in_char = false;
        }
      } else if (c == '/' && next == '/') {
        break;  // rest of the line is a comment
      } else if (c == '/' && next == '*') {
        in_block_comment = true;
        ++i;
      } else if (c == '"') {
        in_string = true;
        code[i] = c;  // keep the delimiters: #include "..." stays visible
      } else if (c == '\'') {
        in_char = true;
      } else {
        code[i] = c;
      }
    }
    // Unterminated string literals do not span lines in this codebase;
    // reset so one stray quote cannot blank the rest of the file.
    view.raw.push_back(line);
    view.code.push_back(std::move(code));
  }
  return view;
}

// `// xlf-lint: allow(rule)` (comma-separated rules accepted) on the
// finding's own line, or alone on the line directly above it.
const std::regex kAllowRe(R"(//\s*xlf-lint:\s*allow\(([^)]*)\))");

bool allow_matches(const std::string& raw_line, const std::string& rule) {
  std::smatch match;
  if (!std::regex_search(raw_line, match, kAllowRe)) return false;
  std::istringstream list(match[1].str());
  std::string name;
  while (std::getline(list, name, ',')) {
    const auto begin = name.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const auto end = name.find_last_not_of(" \t");
    if (name.substr(begin, end - begin + 1) == rule) return true;
  }
  return false;
}

bool is_allowed(const FileView& view, std::size_t line_index,
                const std::string& rule) {
  if (allow_matches(view.raw[line_index], rule)) return true;
  if (line_index > 0) {
    const std::string& above = view.raw[line_index - 1];
    // Only a line that is nothing but the allow comment arms the next
    // line; an allow trailing other code covers that code alone.
    const auto first = above.find_first_not_of(" \t");
    if (first != std::string::npos && above.compare(first, 2, "//") == 0 &&
        allow_matches(above, rule)) {
      return true;
    }
  }
  return false;
}

// ------------------------------------------------------- rule patterns

const std::regex kIncludeRe(R"(^\s*#\s*include\s+"src/([A-Za-z0-9_]+)/)");
const std::regex kRandomRe(R"(\brandom_device\b|\bs?rand\s*\()");
const std::regex kWallClockRe(
    R"(\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b|\btime\s*\(|\bclock\s*\(|\bgettimeofday\b)");
const std::regex kUnorderedRe(R"(\bunordered_(map|set|multimap|multiset)\b)");
const std::regex kPtrOrderRe(
    R"(std::(less|greater)\s*<[^<>;]*\*[^<>;]*>|reinterpret_cast<\s*(std::)?uintptr_t\s*>)");
const std::regex kAssertRe(R"(\bassert\s*\()");

}  // namespace

const std::vector<RuleInfo>& rule_infos() { return kRules; }

bool is_rule_name(const std::string& name) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return name == r.name; });
}

std::string format_finding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

// ----------------------------------------------------------- LayerGraph

LayerGraph LayerGraph::parse(const std::string& text) {
  LayerGraph graph;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("layers.txt line " + std::to_string(line_no) +
                               ": expected 'layer: dep dep ...'");
    }
    std::string layer = line.substr(first, colon - first);
    const auto layer_end = layer.find_last_not_of(" \t");
    layer = layer.substr(0, layer_end + 1);
    if (graph.direct_.count(layer) != 0) {
      throw std::runtime_error("layers.txt: duplicate layer '" + layer + "'");
    }
    std::vector<std::string> deps;
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.push_back(dep);
    graph.direct_.emplace(layer, std::move(deps));
  }
  // Every dependency must itself be a declared layer.
  for (const auto& [layer, deps] : graph.direct_) {
    for (const std::string& dep : deps) {
      if (graph.direct_.count(dep) == 0) {
        throw std::runtime_error("layers.txt: layer '" + layer +
                                 "' depends on undeclared layer '" + dep +
                                 "'");
      }
    }
  }
  // Transitive closure by DFS; a layer revisited while still on the
  // stack is a cycle (a DAG is the whole point of the file).
  enum class Mark { kUnvisited, kOnStack, kDone };
  std::map<std::string, Mark> marks;
  for (const auto& [layer, deps] : graph.direct_) marks[layer] = Mark::kUnvisited;
  const std::function<void(const std::string&)> visit =
      [&](const std::string& layer) {
        if (marks[layer] == Mark::kDone) return;
        if (marks[layer] == Mark::kOnStack) {
          throw std::runtime_error("layers.txt: dependency cycle through '" +
                                   layer + "'");
        }
        marks[layer] = Mark::kOnStack;
        std::set<std::string>& allowed = graph.allowed_[layer];
        allowed.insert(layer);
        for (const std::string& dep : graph.direct_.at(layer)) {
          visit(dep);
          const std::set<std::string>& below = graph.allowed_.at(dep);
          allowed.insert(below.begin(), below.end());
        }
        marks[layer] = Mark::kDone;
      };
  for (const auto& [layer, deps] : graph.direct_) visit(layer);
  return graph;
}

LayerGraph LayerGraph::parse_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("cannot open layers file " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse(text.str());
}

const std::set<std::string>& LayerGraph::allowed(
    const std::string& layer) const {
  const auto it = allowed_.find(layer);
  if (it == allowed_.end()) {
    throw std::runtime_error("unknown layer '" + layer + "'");
  }
  return it->second;
}

bool LayerGraph::has_layer(const std::string& layer) const {
  return direct_.count(layer) != 0;
}

// -------------------------------------------------------------- linting

std::string layer_of(const std::string& path) {
  const std::string generic = std::filesystem::path(path).generic_string();
  std::smatch match;
  static const std::regex kLayerRe(R"((^|/)src/([A-Za-z0-9_]+)/)");
  if (std::regex_search(generic, match, kLayerRe)) return match[2].str();
  return "";
}

bool is_emitter_tu(const std::string& path) {
  const std::string stem = std::filesystem::path(path).stem().string();
  return stem.rfind("report", 0) == 0 ||
         stem.find("_csv") != std::string::npos ||
         stem.find("_json") != std::string::npos;
}

std::vector<Finding> lint_file(const std::string& path,
                               const std::string& contents,
                               const LayerGraph& graph) {
  const FileView view = strip(contents);
  const std::string layer = layer_of(path);
  const bool emitter = is_emitter_tu(path);
  std::vector<Finding> findings;
  const auto report = [&](std::size_t index, const char* rule,
                          std::string message) {
    if (is_allowed(view, index, rule)) return;
    findings.push_back(Finding{path, static_cast<int>(index + 1), rule,
                               std::move(message)});
  };

  for (std::size_t i = 0; i < view.code.size(); ++i) {
    const std::string& code = view.code[i];
    std::smatch match;

    // Includes are matched on the RAW line: the stripper blanks string
    // literals, and the include path is lexically one.
    if (!layer.empty() && graph.has_layer(layer) &&
        std::regex_search(view.raw[i], match, kIncludeRe)) {
      const std::string target = match[1].str();
      if (graph.allowed(layer).count(target) == 0) {
        report(i, kLayering,
               "layer '" + layer + "' must not include \"src/" + target +
                   "/...\": '" + target +
                   "' is not in its dependency closure (see "
                   "tools/lint/layers.txt); move the shared code to a lower "
                   "layer or invert the dependency");
      }
    }
    if (std::regex_search(code, kRandomRe)) {
      report(i, kNoRandom,
             "ambient randomness breaks the seeded-stream reproducibility "
             "contract; draw from an xlf::Rng forked from the experiment "
             "seed instead");
    }
    if (std::regex_search(code, kWallClockRe)) {
      report(i, kNoWallClock,
             "wall-clock time makes output differ run to run; use the "
             "simulated clock (EventQueue time, FTL logical clock) or take "
             "the timestamp as a parameter");
    }
    if (emitter && std::regex_search(code, kUnorderedRe)) {
      report(i, kNoUnorderedEmit,
             "emitter TUs must not touch unordered containers: hash "
             "iteration order varies across libstdc++ versions and seeds; "
             "use std::map or sort into a vector before emitting");
    }
    if (std::regex_search(code, kPtrOrderRe)) {
      report(i, kNoPtrOrder,
             "pointer-value ordering follows the allocator, not the model; "
             "sort by a stable id (block id, LBA, queue id) instead");
    }
    if (std::regex_search(code, kAssertRe)) {
      report(i, kRawAssert,
             "raw assert() is compiled out in NDEBUG/Release builds, where "
             "the determinism CI runs; use XLF_EXPECT / XLF_EXPECT_MSG / "
             "XLF_ENSURE (src/util/expect.hpp) so the contract always "
             "holds");
    }
  }
  return findings;
}

std::vector<Finding> lint_tree(const std::string& root,
                               const LayerGraph& graph) {
  namespace fs = std::filesystem;
  if (!fs::exists(root)) {
    throw std::runtime_error("no such file or directory: " + root);
  }
  std::vector<std::string> paths;
  if (fs::is_directory(root)) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        paths.push_back(entry.path().generic_string());
      }
    }
    // Directory iteration order is filesystem-dependent; finding order
    // is part of the CLI contract, so sort.
    std::sort(paths.begin(), paths.end());
  } else {
    paths.push_back(root);
  }
  std::vector<Finding> findings;
  for (const std::string& path : paths) {
    std::ifstream file(path);
    if (!file) {
      throw std::runtime_error("cannot read " + path);
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    std::vector<Finding> file_findings =
        lint_file(path, contents.str(), graph);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

// ------------------------------------------------------------------ CLI

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  std::string layers_path = "tools/lint/layers.txt";
  std::vector<std::string> targets;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      out << "usage: xlf_lint [--layers FILE] [--list-rules] PATH...\n"
             "  --layers FILE   layer DAG (default tools/lint/layers.txt)\n"
             "  --list-rules    print every rule with its summary and exit\n"
             "  PATH            files or directories (typically src/)\n"
             "exit codes: 0 clean, 1 findings, 2 usage or I/O error\n"
             "suppress one finding: // xlf-lint: allow(<rule>)\n";
      return 0;
    }
    if (arg == "--list-rules") {
      for (const RuleInfo& rule : rule_infos()) {
        out << rule.name << ": " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--layers") {
      if (i + 1 >= args.size()) {
        err << "xlf_lint: missing value for --layers\n";
        return 2;
      }
      layers_path = args[++i];
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      err << "xlf_lint: unknown flag '" << arg << "' (try --help)\n";
      return 2;
    }
    targets.push_back(arg);
  }
  if (targets.empty()) {
    err << "xlf_lint: no paths given (try `xlf_lint src`)\n";
    return 2;
  }
  try {
    const LayerGraph graph = LayerGraph::parse_file(layers_path);
    std::vector<Finding> findings;
    for (const std::string& target : targets) {
      std::vector<Finding> tree = lint_tree(target, graph);
      findings.insert(findings.end(), std::make_move_iterator(tree.begin()),
                      std::make_move_iterator(tree.end()));
    }
    for (const Finding& finding : findings) {
      out << format_finding(finding) << "\n";
    }
    if (!findings.empty()) {
      err << "xlf_lint: " << findings.size() << " finding"
          << (findings.size() == 1 ? "" : "s") << "\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    err << "xlf_lint: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace xlf::lint
