// Whole-program call graph for xlf_lint: the symbol-resolution layer
// the cross-TU analyses (hot-alloc propagation, ack-order, arena-ref)
// sit on.
//
// Definitions are qualified by lexical scope — `namespace a::b { void
// f() {...} }` and the out-of-line `void a::b::C::f() {...}` both
// yield a component list ending in "f" — using the lexer's token
// stream and brace tracking. Call sites inside each body resolve
// against every definition in the lint_files() set:
//
//  * a qualified call (`a::b::f(...)`) matches definitions whose
//    component list ends with the written qualifier chain + name;
//  * an unqualified call (`f(...)`, `obj.f(...)`, `ptr->f(...)`)
//    matches EVERY definition with the same bare name, in any TU.
//
// Resolution is name-level on purpose: no types, no overload
// selection. Every same-named overload (and every same-named method
// of an unrelated class) is an edge, so reachability over-
// approximates — a rule can report a site only spuriously, never
// miss one because a call crossed a TU boundary. The one narrowing:
// anonymous-namespace definitions have internal linkage, so they
// resolve only from their own TU. Function pointers, virtual dispatch
// through externally-defined interfaces, and macro-generated bodies
// stay invisible — callers document those limits per rule.
#pragma once

#include <cstddef>
#include <map>
#include <regex>
#include <string>
#include <vector>

#include "tools/lint/lexer.hpp"

namespace xlf::lint {

// One function definition with its scope qualification.
struct Def {
  std::string name;                     // bare name
  std::vector<std::string> components;  // enclosing scopes + written
                                        // qualifier chain + bare name
  std::string qual;                     // components joined with "::"
  int name_line = 0;                    // line of the name token
  int open_line = 0;                    // line of the body '{'
  std::size_t open_tok = 0;             // '{' index in the TU's code
  std::size_t close_tok = 0;            // matching '}' index
  std::size_t tu = 0;                   // index into the lint set
  bool tu_local = false;                // anonymous-namespace scope
};

// One call site inside a definition's body.
struct Call {
  std::string name;                // bare callee name
  std::vector<std::string> quals;  // explicit `a::b::` chain, if any
  std::size_t tok = 0;             // token index in the TU's code
  int line = 0;
};

// Shared token helpers (the rule TUs use them too). ---------------------

// Names that look like `name(` but never are a function — control
// flow, word operators, expression keywords.
bool never_a_function(const std::string& name);

// Index of the punct matching `open_text` at `open` (which must hold
// an `open_text` token), or npos when unbalanced.
std::size_t match_punct(const std::vector<Token>& code, std::size_t open,
                        const char* open_text, const char* close_text);

// Scope-qualified definition scan over one TU's structural tokens
// (comments and preprocessor tokens removed). `tu` is echoed into
// every Def. Function bodies are skipped (definitions do not nest;
// lambda tokens belong to the enclosing definition), but class and
// namespace bodies are walked so member definitions qualify.
std::vector<Def> find_defs_scoped(const std::vector<Token>& code,
                                  std::size_t tu);

// Call sites in (def.open_tok, def.close_tok).
std::vector<Call> find_calls(const std::vector<Token>& code, const Def& def);

// True when a comment matching `re` sits on the def's signature: up
// to three lines above the name (multi-line return types) through the
// line of the opening brace (trailing same-line markers).
bool def_has_marker(const Def& def, const std::vector<Token>& comments,
                    const std::regex& re);

// The graph itself. -----------------------------------------------------

class CallGraph {
 public:
  // codes[i] = TU i's structural token stream. Defs are discovered in
  // (tu, position) order; edges resolve across all TUs.
  static CallGraph build(const std::vector<const std::vector<Token>*>& codes);

  const std::vector<Def>& defs() const { return defs_; }
  // Resolved callee def indices of `def`, deduplicated, ascending.
  const std::vector<std::size_t>& callees(std::size_t def) const {
    return out_[def];
  }
  // Raw call sites of `def`, in body order.
  const std::vector<Call>& calls(std::size_t def) const {
    return calls_[def];
  }

  // Defs a call from TU `from_tu` can bind to (see file comment for
  // the matching rule), ascending def index.
  std::vector<std::size_t> resolve(const Call& call,
                                   std::size_t from_tu) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // Deterministic multi-source BFS. parent[d] is d's predecessor on a
  // shortest path (a root is its own parent), root[d] the root that
  // reached it; both npos when unreached. Defs with stop[d] != 0 are
  // never visited — BFS treats them as absent (their bodies and
  // callees stay out of the closure).
  struct Reach {
    std::vector<std::size_t> parent;
    std::vector<std::size_t> root;
  };
  Reach reach(const std::vector<std::size_t>& roots,
              const std::vector<char>* stop = nullptr) const;

 private:
  std::vector<Def> defs_;
  std::vector<std::vector<Call>> calls_;       // per def
  std::vector<std::vector<std::size_t>> out_;  // per def, resolved
  std::multimap<std::string, std::size_t> by_name_;
};

}  // namespace xlf::lint
