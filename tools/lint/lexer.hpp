// Token lexer for xlf_lint: the analysis core the rule families sit
// on. One pass over a translation unit's text produces
//
//  * a token stream — identifiers, numbers, punctuators, string/char
//    literals, comments and preprocessor directives, each carrying its
//    1-based physical line and 0-based column — for the structural
//    rules (hot-path allocation reachability, lock discipline), and
//
//  * a stripped per-line code view — comment text and literal
//    contents blanked to spaces, shape-identical to the raw lines —
//    for the line-pattern rules inherited from the PR 7 linter (whose
//    findings it reproduces byte for byte; the pin fixture under
//    fixtures/pin holds the frozen reference output).
//
// Unlike the line-based stripper it replaces, the lexer carries state
// across physical lines, which fixes the two known weaknesses:
//
//  * raw string literals — R"( ... )" and R"delim( ... )delim" — are
//    blanked across newlines, custom delimiters and embedded quotes;
//  * backslash line continuations splice the next physical line into
//    the current // comment, string literal or preprocessor
//    directive instead of resetting the state at the newline.
//
// Tokens lexed inside a preprocessor directive (from the introducing
// `#` to the unspliced end of line) are flagged so structural rules
// can skip macro bodies and header names.
//
// Preprocessor conditionals are tracked: a region disabled by a
// literal `#if 0` / `#if false` (or the `#else` arm of `#if 1`)
// emits no tokens, stays blank in the code view, and is marked dead
// in the per-line `live` map. Conditions the lexer cannot evaluate
// (`#ifdef`, `#if defined(...)`, macro expressions) keep BOTH arms
// live — over-approximate on purpose, so a rule can miss a finding
// only in code that provably never compiles.
#pragma once

#include <string>
#include <vector>

namespace xlf::lint {

enum class TokKind {
  kIdentifier,  // keywords are not distinguished; check .text
  kNumber,      // pp-number: 0xFF, 1'000, 1.5e-3 ...
  kString,      // ordinary, prefixed, or raw string literal
  kChar,        // character literal
  kPunct,       // one punctuator; "::" and "->" are single tokens
  kComment,     // // or /* */, full text kept for marker scans
};

struct Token {
  TokKind kind = TokKind::kPunct;
  // Identifier/number/punct: the exact spelling. Comment: the full
  // text including delimiters (and newlines, for multi-line blocks).
  // String/char: delimiters only ("" / ''), contents dropped.
  std::string text;
  int line = 0;  // 1-based physical line of the token's first char
  int col = 0;   // 0-based column on that line
  bool preprocessor = false;  // lexed inside a # directive
};

struct LexedFile {
  std::vector<Token> tokens;      // in source order, comments included
  std::vector<std::string> raw;   // physical lines, as read
  std::vector<std::string> code;  // stripped view, same line count and
                                  // per-line length as `raw`
  // live[i] == 0 when physical line i sits inside a preprocessor-
  // disabled region (`#if 0`, the dead arm of `#if 1`): no tokens, no
  // code view, and rules that look at raw lines must skip it too.
  std::vector<unsigned char> live;
};

LexedFile lex(const std::string& contents);

}  // namespace xlf::lint
