#include "tools/lint/sarif.hpp"

#include <string>
#include <vector>

#include "tools/lint/lint.hpp"

namespace xlf::lint {
namespace {

// JSON string escaping per RFC 8259: the two mandatory escapes plus
// \uXXXX for control characters. Finding messages are ASCII today,
// but paths and quoted source tokens flow through here verbatim.
std::string json_escape(const std::string& s) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out += kHex[u >> 4];
          out += kHex[u & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"xlf_lint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/xlf/tools/lint\",\n"
      "          \"rules\": [\n";
  const std::vector<RuleInfo>& rules = rule_infos();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": \"" + json_escape(rules[i].name) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(rules[i].summary) + "\"}}";
    out += (i + 1 < rules.size()) ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\"ruleId\": \"" + json_escape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           json_escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.file) + "\"}, \"region\": {\"startLine\": " +
           std::to_string(f.line) + "}}}]}";
    out += (i + 1 < findings.size()) ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace xlf::lint
