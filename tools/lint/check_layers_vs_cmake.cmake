# Cross-check: tools/lint/layers.txt (the DAG xlf_lint enforces) must
# equal the real xlf::<layer> link edges declared by xlf_add_layer()
# in the top-level CMakeLists.txt — same layers, same direct deps, in
# both directions. Run as a CTest script:
#   cmake -DLAYERS=... -DCMAKE_LISTS=... -P check_layers_vs_cmake.cmake
# so the lint DAG can never drift from the build's DAG.

if(NOT DEFINED LAYERS OR NOT DEFINED CMAKE_LISTS)
  message(FATAL_ERROR
          "usage: cmake -DLAYERS=layers.txt -DCMAKE_LISTS=CMakeLists.txt "
          "-P check_layers_vs_cmake.cmake")
endif()

# --- layers.txt: "layer: dep dep ..." lines, '#' comments -------------
# file(READ) + manual split: file(STRINGS) splits lines at non-ASCII
# bytes, and the comment header contains typography. Comments are
# stripped from the whole text first — a ';' inside a comment would
# otherwise fork a bogus list element.
file(READ ${LAYERS} lint_text)
string(REGEX REPLACE "#[^\n]*" "" lint_text "${lint_text}")
string(REPLACE "\n" ";" lint_lines "${lint_text}")
set(lint_layers "")
foreach(line IN LISTS lint_lines)
  string(STRIP "${line}" line)
  if(line STREQUAL "")
    continue()
  endif()
  if(NOT line MATCHES "^([A-Za-z0-9_]+):(.*)$")
    message(FATAL_ERROR "layers.txt: malformed line '${line}'")
  endif()
  set(layer ${CMAKE_MATCH_1})
  string(STRIP "${CMAKE_MATCH_2}" deps)
  string(REPLACE " " ";" deps "${deps}")
  list(REMOVE_ITEM deps "")
  list(SORT deps)
  list(APPEND lint_layers ${layer})
  set(lint_deps_${layer} "${deps}")
endforeach()

# --- CMakeLists.txt: xlf_add_layer(<layer> <deps...>) calls -----------
file(READ ${CMAKE_LISTS} cmake_text)
string(REGEX MATCHALL "xlf_add_layer\\(([A-Za-z0-9_ \t\r\n]+)\\)" calls
       "${cmake_text}")
set(cmake_layers "")
foreach(call IN LISTS calls)
  string(REGEX REPLACE "xlf_add_layer\\((.*)\\)" "\\1" body "${call}")
  string(REGEX REPLACE "[ \t\r\n]+" ";" body "${body}")
  list(REMOVE_ITEM body "")
  list(POP_FRONT body layer)
  list(SORT body)
  list(APPEND cmake_layers ${layer})
  set(cmake_deps_${layer} "${body}")
endforeach()
if(cmake_layers STREQUAL "")
  message(FATAL_ERROR "no xlf_add_layer() calls found in ${CMAKE_LISTS}")
endif()

# --- compare both directions ------------------------------------------
list(SORT lint_layers)
list(SORT cmake_layers)
if(NOT lint_layers STREQUAL cmake_layers)
  message(FATAL_ERROR
          "layer sets differ:\n  layers.txt: ${lint_layers}\n"
          "  CMakeLists: ${cmake_layers}")
endif()
foreach(layer IN LISTS lint_layers)
  if(NOT lint_deps_${layer} STREQUAL cmake_deps_${layer})
    message(FATAL_ERROR
            "direct deps of '${layer}' differ:\n"
            "  layers.txt: ${lint_deps_${layer}}\n"
            "  CMakeLists: ${cmake_deps_${layer}}")
  endif()
endforeach()
message(STATUS "layers.txt matches CMake link edges for: ${lint_layers}")
