// Figure 4: compact-model fit of the NAND cell during an ISPP
// operation — threshold voltage versus control-gate voltage for a
// staircase of 1 V steps / 7 us pulses on a 41 nm-class cell.
//
// The "experimental" series stands in for the digitized measurement
// of [26]: the analytic staircase law (slope-1 tracking above the
// tunnelling onset, exponential turn-on below) evaluated with the
// fitted device constants. The "simulated" series is the compact
// model driven pulse-by-pulse through the ISPP engine. The fit
// quality is reported as RMSE, mirroring the visual fit of the paper.
#include <cmath>
#include <iostream>

#include "src/core/paper.hpp"
#include "src/nand/ispp.hpp"
#include "src/util/series.hpp"
#include "src/util/stats.hpp"

using namespace xlf;

namespace {

// Fitted constants of the 41 nm experiment: VTH reaches 6 V at
// VCG = 24 V with 1 V steps; erased level -5 V.
constexpr double kOnsetK = 17.03;
constexpr double kSharpness = 0.4;
constexpr double kErased = -5.0;

// Analytic reference: iterate the expected-step law without noise.
std::vector<double> reference_staircase(const std::vector<double>& vcg_grid) {
  std::vector<double> out;
  double vth = kErased;
  for (double vcg : vcg_grid) {
    const double overdrive = vcg - vth - kOnsetK;
    const double x = overdrive / kSharpness;
    const double step =
        x > 30.0 ? overdrive : kSharpness * std::log1p(std::exp(x));
    vth += step;
    out.push_back(vth);
  }
  return out;
}

}  // namespace

int main() {
  print_banner(std::cout, "Figure 4",
               "NAND compact model vs experimental ISPP staircase "
               "(1 V steps, 7 us pulses, 41 nm)");

  nand::IsppConfig ispp;
  ispp.pulse_time = core::paper::kFig4PulseTime;
  ispp.v_start = Volts{6.0};
  ispp.v_end = Volts{24.0};
  ispp.v_step = core::paper::kFig4Step;
  nand::VoltagePlan plan;  // defaults; staircase mode ignores verify plan
  const nand::IsppEngine engine(ispp, plan);

  nand::CellParams params;
  params.k_onset = Volts{kOnsetK};
  params.onset_sharpness = Volts{kSharpness};
  params.injection_sigma = Volts{0.02};
  nand::FloatingGateCell cell(Volts{kErased}, params);

  Rng rng(4);
  const auto response = engine.staircase_response(cell, Volts{6.0},
                                                  Volts{24.0}, Volts{1.0}, rng);

  std::vector<double> vcg_grid;
  for (std::size_t i = 0; i < response.size(); ++i) {
    vcg_grid.push_back(6.0 + static_cast<double>(i));
  }
  const auto reference = reference_staircase(vcg_grid);

  SeriesTable table("VCG_V");
  table.add_series("VTH_simulated_V");
  table.add_series("VTH_experimental_V");
  std::vector<double> simulated;
  for (std::size_t i = 0; i < response.size(); ++i) {
    simulated.push_back(response[i].value());
    table.add_row(vcg_grid[i], {response[i].value(), reference[i]});
  }
  table.print(std::cout, /*scientific=*/false);
  table.write_csv("fig04_compact_model.csv");

  const double fit_rmse = rmse(simulated, reference);
  std::cout << "\nfit RMSE = " << fit_rmse << " V (paper: visual overlay)\n"
            << "slope-1 tracking region reached above VCG ~ "
            << kOnsetK + kErased + 1.0 << " V\n";
  return 0;
}
