// Figure 7: UBER vs RBER for the ISPP-SV algorithm. Reproduces the
// annotated operating points: with target UBER 1e-11, t = 3 suffices
// at RBER 1e-6 and the requirement climbs to t = 65 at RBER 1e-3
// (the end-of-life ISPP-SV error rate).
#include <iostream>

#include "src/bch/code_params.hpp"
#include "src/core/paper.hpp"
#include "src/util/series.hpp"

using namespace xlf;

int main() {
  print_banner(std::cout, "Figure 7",
               "UBER and RBER relation for the ISPP-SV algorithm");

  const unsigned ts[] = {3, 4, 27, 30, 65};

  SeriesTable table("RBER");
  for (unsigned t : ts) table.add_series("UBER_t" + std::to_string(t));
  table.add_series("required_t");

  for (double rber : core::paper::kFig7RberGrid) {
    std::vector<double> row;
    for (unsigned t : ts) {
      const bch::CodeParams params{16, 32768, t};
      row.push_back(bch::uber(rber, params.n(), t));
    }
    const auto required = bch::min_t_for_uber(
        rber, core::paper::kUberTarget, 32768, 16, 3, 100);
    row.push_back(required.has_value() ? static_cast<double>(*required) : -1.0);
    table.add_row(rber, row);
  }

  table.print(std::cout);
  table.write_csv("fig07_uber_sv.csv");
  std::cout << "\ntarget UBER = 1e-11; paper annotations: t=3 @ 1e-6, "
               "t=4 @ 2.5e-6, t=27 @ 2.75e-4, t=30 @ 3.35e-4, t=65 @ 1e-3\n";
  return 0;
}
