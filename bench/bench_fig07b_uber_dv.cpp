// Figure "??" (the ISPP-DV companion of Fig. 7, missing from the
// camera-ready source): UBER vs RBER for ISPP-DV. The text pins its
// content: tMIN = 3 in the best case and tMAX = 14 at the end-of-life
// ISPP-DV error rate. The DV RBER grid is the SV grid shifted one
// order of magnitude down (Fig. 5).
#include <iostream>

#include "src/bch/code_params.hpp"
#include "src/core/paper.hpp"
#include "src/util/series.hpp"

using namespace xlf;

int main() {
  print_banner(std::cout, "Figure ?? (DV twin of Fig. 7)",
               "UBER and RBER relation for the ISPP-DV algorithm");

  const unsigned ts[] = {3, 4, 8, 14, 16};

  SeriesTable table("RBER");
  for (unsigned t : ts) table.add_series("UBER_t" + std::to_string(t));
  table.add_series("required_t");

  for (double rber_sv : core::paper::kFig7RberGrid) {
    const double rber = rber_sv / core::paper::kRberImprovementFactor;
    std::vector<double> row;
    for (unsigned t : ts) {
      const bch::CodeParams params{16, 32768, t};
      row.push_back(bch::uber(rber, params.n(), t));
    }
    const auto required = bch::min_t_for_uber(
        rber, core::paper::kUberTarget, 32768, 16, 3, 100);
    row.push_back(required.has_value() ? static_cast<double>(*required) : -1.0);
    table.add_row(rber, row);
  }

  table.print(std::cout);
  table.write_csv("fig07b_uber_dv.csv");
  std::cout << "\ntarget UBER = 1e-11; paper text: tMIN = 3, tMAX = 14 for "
               "ISPP-DV (we measure the Eq.-(1)-exact requirement; see "
               "EXPERIMENTS.md for the small end-of-life deviation)\n";
  return 0;
}
