// Ablation of the paper's core argument: what each layer achieves
// alone versus co-configured. At several lifetime points we compare:
//
//   baseline        ISPP-SV, ECC sized for SV          (reference)
//   ecc-only        ISPP-SV, ECC relaxed to DV sizing  (controller knob
//                   alone: read gain but the UBER target is violated)
//   physical-only   ISPP-DV, ECC kept at SV sizing     (device knob
//                   alone: UBER boost, no read gain)
//   cross-layer     ISPP-DV, ECC relaxed to DV sizing  (both: read gain
//                   at unchanged UBER)
//
// The table shows why neither single-layer move provides the paper's
// headline trade-off.
#include <iomanip>
#include <iostream>

#include "src/core/cross_layer.hpp"
#include "src/core/subsystem.hpp"
#include "src/util/series.hpp"

using namespace xlf;
using core::EccSchedule;
using core::OperatingPoint;
using nand::ProgramAlgorithm;

int main() {
  print_banner(std::cout, "Ablation",
               "Cross-layer vs single-layer configuration moves");

  const core::SubsystemConfig cfg = core::SubsystemConfig::defaults();
  const nand::NandTiming timing(cfg.device.timing, cfg.device.array.ispp,
                                cfg.device.array.plan,
                                cfg.device.array.variability,
                                cfg.device.array.aging);
  const core::CrossLayerFramework fw(cfg.cross_layer, cfg.device.array.aging,
                                     timing, cfg.hv);

  const OperatingPoint ecc_only{"ecc-only", ProgramAlgorithm::kIsppSv,
                                EccSchedule::kTrackDv, 3};
  const OperatingPoint strategies[] = {
      OperatingPoint::baseline(), ecc_only, OperatingPoint::min_uber(),
      OperatingPoint::max_read()};

  const double uber_target = cfg.cross_layer.uber_target;
  for (double cycles : {1e2, 1e5, 1e6}) {
    std::cout << "\n--- " << cycles << " P/E cycles ---\n";
    std::cout << std::left << std::setw(16) << "strategy" << std::setw(6)
              << "t" << std::setw(12) << "read MiB/s" << std::setw(12)
              << "write MiB/s" << std::setw(14) << "log10(UBER)"
              << std::setw(12) << "P_tot mW" << "meets 1e-11?\n";
    const core::Metrics base = fw.evaluate(OperatingPoint::baseline(), cycles);
    for (const OperatingPoint& point : strategies) {
      const core::Metrics m = fw.evaluate(point, cycles);
      std::cout << std::left << std::setw(16) << point.name << std::setw(6)
                << m.t << std::setw(12) << std::fixed << std::setprecision(2)
                << m.read_throughput.mib() << std::setw(12)
                << m.write_throughput.mib() << std::setw(14)
                << std::setprecision(2) << m.log10_uber << std::setw(12)
                << m.total_power().milliwatts()
                << (m.uber <= uber_target ? "yes" : "NO  <-- violated")
                << std::defaultfloat << '\n';
    }
    const core::Metrics cross = fw.evaluate(OperatingPoint::max_read(), cycles);
    std::cout << "cross-layer read gain vs baseline: "
              << core::compare(cross, base).read_throughput_gain_pct << "%\n";
  }

  std::cout << "\nconclusion: only the co-configuration reaches higher read "
               "throughput while holding the UBER target; the ECC knob alone "
               "breaks reliability, the device knob alone buys no speed\n";
  return 0;
}
