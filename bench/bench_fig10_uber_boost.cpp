// Figure 10: UBER improvement of the physical-layer modification —
// switch the device to ISPP-DV while the ECC keeps the schedule sized
// for ISPP-SV (the MinUber operating point, Section 6.3.1). The
// nominal series rides just under the 1e-11 target; the modified
// series falls away as the 10x RBER margin multiplies through
// Eq. (1)'s RBER^(t+1).
//
// Reproduction note (documented in EXPERIMENTS.md): the paper's text
// quotes a "2..4 orders of magnitude" boost while its own Fig. 10
// axis spans 1e-9..1e-21; Eq. (1) gives a 10^(t+1)-fold ratio for a
// 10x RBER cut at fixed t, which at end of life (t = 65) is far
// larger than either. We print the exact Eq.-(1) values in log10.
#include <iostream>

#include "src/core/cross_layer.hpp"
#include "src/core/subsystem.hpp"
#include "src/util/series.hpp"
#include "src/util/stats.hpp"

using namespace xlf;

int main() {
  print_banner(std::cout, "Figure 10",
               "UBER improvement from the physical-layer modification "
               "(ISPP-DV at the SV ECC schedule)");

  const core::SubsystemConfig cfg = core::SubsystemConfig::defaults();
  const nand::NandTiming timing(cfg.device.timing, cfg.device.array.ispp,
                                cfg.device.array.plan,
                                cfg.device.array.variability,
                                cfg.device.array.aging);
  const core::CrossLayerFramework fw(cfg.cross_layer, cfg.device.array.aging,
                                     timing, cfg.hv);

  SeriesTable table("PE_cycles");
  table.add_series("log10_UBER_nominal");
  table.add_series("log10_UBER_physmod");
  table.add_series("boost_orders");
  table.add_series("t_used");

  for (double cycles : log_space(1.0, 1e6, 13)) {
    const core::Metrics nominal =
        fw.evaluate(core::OperatingPoint::baseline(), cycles);
    const core::Metrics modified =
        fw.evaluate(core::OperatingPoint::min_uber(), cycles);
    table.add_row(cycles, {nominal.log10_uber, modified.log10_uber,
                           nominal.log10_uber - modified.log10_uber,
                           static_cast<double>(nominal.t)});
  }

  table.print(std::cout, /*scientific=*/false);
  table.write_csv("fig10_uber_boost.csv");
  std::cout << "\nnominal stays at/below the 1e-11 target; the modified "
               "point gains 10^(t+1)-fold margin, growing with memory age\n";
  return 0;
}
