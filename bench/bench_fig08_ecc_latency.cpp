// Figure 8: ECC encoding/decoding latency over the device lifetime
// for both program algorithms at 80 MHz. Encoding is t-independent
// (~51 us); ISPP-SV decoding climbs as the reliability manager raises
// t toward 65 (~159 us at end of life) while ISPP-DV decoding stays
// nearly flat — the latency headroom that becomes Fig. 11's read gain.
#include <iostream>

#include "src/core/cross_layer.hpp"
#include "src/core/subsystem.hpp"
#include "src/util/series.hpp"
#include "src/util/stats.hpp"

using namespace xlf;
using nand::ProgramAlgorithm;

int main() {
  print_banner(std::cout, "Figure 8",
               "ECC encoding/decoding latency vs ISPP algorithm and lifetime "
               "(80 MHz)");

  const core::SubsystemConfig cfg = core::SubsystemConfig::defaults();
  const nand::NandTiming timing(cfg.device.timing, cfg.device.array.ispp,
                                cfg.device.array.plan,
                                cfg.device.array.variability,
                                cfg.device.array.aging);
  const core::CrossLayerFramework fw(cfg.cross_layer, cfg.device.array.aging,
                                     timing, cfg.hv);

  SeriesTable table("PE_cycles");
  table.add_series("SV_encode_us");
  table.add_series("DV_encode_us");
  table.add_series("SV_decode_us");
  table.add_series("DV_decode_us");
  table.add_series("t_SV");
  table.add_series("t_DV");

  for (double cycles : log_space(1.0, 1e6, 13)) {
    const unsigned t_sv = fw.scheduled_t(ProgramAlgorithm::kIsppSv, cycles);
    const unsigned t_dv = fw.scheduled_t(ProgramAlgorithm::kIsppDv, cycles);
    const double encode = fw.latency_model().encode_latency().micros();
    table.add_row(cycles, {encode, encode,
                           fw.latency_model().decode_latency(t_sv).micros(),
                           fw.latency_model().decode_latency(t_dv).micros(),
                           static_cast<double>(t_sv),
                           static_cast<double>(t_dv)});
  }

  table.print(std::cout, /*scientific=*/false);
  table.write_csv("fig08_ecc_latency.csv");
  std::cout << "\npaper envelope: 40-160 us at 80 MHz; decode ~150 us vs "
               "75 us page read at end of life\n";
  return 0;
}
