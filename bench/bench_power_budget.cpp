// Section 6.3.2 power-budget claim: at the MaxRead point the NAND's
// extra ISPP-DV power (~7.5 mW) is compensated by the relaxed ECC
// (from ~7 mW at t=65 toward ~1 mW), keeping the memory power budget
// roughly constant. This bench prints the end-of-life budget table
// and the same decomposition at mid-life.
#include <iostream>

#include "src/core/cross_layer.hpp"
#include "src/core/subsystem.hpp"
#include "src/util/series.hpp"

using namespace xlf;

int main() {
  print_banner(std::cout, "Section 6.3.2",
               "Power budget: NAND penalty vs ECC relaxation");

  const core::SubsystemConfig cfg = core::SubsystemConfig::defaults();
  const nand::NandTiming timing(cfg.device.timing, cfg.device.array.ispp,
                                cfg.device.array.plan,
                                cfg.device.array.variability,
                                cfg.device.array.aging);
  const core::CrossLayerFramework fw(cfg.cross_layer, cfg.device.array.aging,
                                     timing, cfg.hv);

  SeriesTable table("PE_cycles");
  table.add_series("P_nand_SV_mW");
  table.add_series("P_nand_DV_mW");
  table.add_series("P_ecc_baseline_mW");
  table.add_series("P_ecc_maxread_mW");
  table.add_series("total_baseline_mW");
  table.add_series("total_maxread_mW");
  table.add_series("delta_mW");

  for (double cycles : {1e2, 1e4, 1e5, 1e6}) {
    const core::Metrics base =
        fw.evaluate(core::OperatingPoint::baseline(), cycles);
    const core::Metrics maxread =
        fw.evaluate(core::OperatingPoint::max_read(), cycles);
    table.add_row(
        cycles,
        {base.nand_program_power.milliwatts(),
         maxread.nand_program_power.milliwatts(),
         base.ecc_decode_power.milliwatts(),
         maxread.ecc_decode_power.milliwatts(),
         base.total_power().milliwatts(), maxread.total_power().milliwatts(),
         (maxread.total_power() - base.total_power()).milliwatts()});
  }

  table.print(std::cout, /*scientific=*/false);
  table.write_csv("power_budget.csv");
  std::cout << "\npaper: ECC relaxes from ~7 mW to ~1 mW at end of life, "
               "offsetting the ~7.5 mW ISPP-DV penalty\n";
  return 0;
}
