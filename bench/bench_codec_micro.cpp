// Microbenchmarks of the bit-true BCH codec (google-benchmark): field
// arithmetic, encode, syndrome computation, Berlekamp-Massey, Chien
// search and the full decode, at the paper's corner capabilities.
// These quantify the *software* cost of the models; hardware latency
// comes from ecc_hw::LatencyModel.
#include <benchmark/benchmark.h>

#include "src/bch/codec.hpp"
#include "src/bch/decoder.hpp"
#include "src/bch/encoder.hpp"
#include "src/bch/error_injection.hpp"
#include "src/bch/generator.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace xlf;

BitVec random_message(std::uint32_t k, Rng& rng) {
  BitVec msg(k);
  for (std::uint32_t i = 0; i < k; ++i) msg.set(i, rng.chance(0.5));
  return msg;
}

void BM_GfMultiply(benchmark::State& state) {
  const gf::Gf2m field(16);
  Rng rng(1);
  gf::Element a = 0x1234, b = 0x5678;
  for (auto _ : state) {
    a = field.mul(a, b);
    b ^= a;
    if (b == 0) b = 1;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_GfMultiply);

void BM_GeneratorConstruction(benchmark::State& state) {
  const gf::Gf2m field(16);
  const unsigned t = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bch::generator_polynomial(field, t));
  }
}
BENCHMARK(BM_GeneratorConstruction)->Arg(3)->Arg(14)->Arg(65);

struct CodecFixture {
  gf::Gf2m field{16};
  unsigned t;
  bch::CodeParams params;
  bch::Encoder encoder;
  bch::Decoder decoder;
  explicit CodecFixture(unsigned t_in)
      : t(t_in),
        params{16, 32768, t_in},
        encoder(params, bch::generator_polynomial(field, t_in)),
        decoder(field, params) {}
};

void BM_Encode(benchmark::State& state) {
  CodecFixture fx(static_cast<unsigned>(state.range(0)));
  Rng rng(2);
  const BitVec msg = random_message(32768, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.encoder.encode(msg));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Encode)->Arg(3)->Arg(14)->Arg(65);

// The production word-at-a-time kernel vs the per-bit Horner baseline
// on the same 4 KiB page; the explore engine's throughput rides on
// this ratio (acceptance: word kernel >= 3x the bitwise path).
void BM_SyndromesDense(benchmark::State& state) {
  CodecFixture fx(static_cast<unsigned>(state.range(0)));
  Rng rng(3);
  BitVec cw = fx.encoder.encode(random_message(32768, rng));
  bch::inject_exact(cw, fx.t, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.decoder.syndromes(cw));
  }
}
BENCHMARK(BM_SyndromesDense)->Arg(3)->Arg(14)->Arg(65);

void BM_SyndromesBitwise(benchmark::State& state) {
  CodecFixture fx(static_cast<unsigned>(state.range(0)));
  Rng rng(3);
  BitVec cw = fx.encoder.encode(random_message(32768, rng));
  bch::inject_exact(cw, fx.t, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.decoder.syndromes_bitwise(cw));
  }
}
BENCHMARK(BM_SyndromesBitwise)->Arg(3)->Arg(14)->Arg(65);

void BM_SyndromesSparse(benchmark::State& state) {
  CodecFixture fx(static_cast<unsigned>(state.range(0)));
  Rng rng(4);
  BitVec cw = fx.encoder.encode(random_message(32768, rng));
  const auto positions = bch::inject_exact(cw, fx.t, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.decoder.syndromes_from_errors(positions));
  }
}
BENCHMARK(BM_SyndromesSparse)->Arg(3)->Arg(14)->Arg(65);

void BM_BerlekampMassey(benchmark::State& state) {
  CodecFixture fx(static_cast<unsigned>(state.range(0)));
  Rng rng(5);
  BitVec cw = fx.encoder.encode(random_message(32768, rng));
  const auto positions = bch::inject_exact(cw, fx.t, rng);
  const auto syndromes = fx.decoder.syndromes_from_errors(positions);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.decoder.berlekamp_massey(syndromes));
  }
}
BENCHMARK(BM_BerlekampMassey)->Arg(3)->Arg(14)->Arg(65);

void BM_ChienSearch(benchmark::State& state) {
  CodecFixture fx(static_cast<unsigned>(state.range(0)));
  Rng rng(6);
  BitVec cw = fx.encoder.encode(random_message(32768, rng));
  const auto positions = bch::inject_exact(cw, fx.t, rng);
  const auto lambda = fx.decoder.berlekamp_massey(
      fx.decoder.syndromes_from_errors(positions));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.decoder.chien_search(lambda));
  }
}
BENCHMARK(BM_ChienSearch)->Arg(3)->Arg(14)->Arg(65);

void BM_FullDecodeWithReference(benchmark::State& state) {
  CodecFixture fx(static_cast<unsigned>(state.range(0)));
  Rng rng(7);
  const BitVec clean = fx.encoder.encode(random_message(32768, rng));
  BitVec corrupted = clean;
  bch::inject_exact(corrupted, fx.t, rng);
  for (auto _ : state) {
    BitVec work = corrupted;
    benchmark::DoNotOptimize(fx.decoder.decode_with_reference(work, clean));
  }
}
BENCHMARK(BM_FullDecodeWithReference)->Arg(3)->Arg(14)->Arg(65);

}  // namespace

BENCHMARK_MAIN();
