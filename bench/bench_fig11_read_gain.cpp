// Figure 11: read-throughput gain of the cross-layer optimisation
// (MaxRead: ISPP-DV + ECC relaxed to the DV schedule at unchanged
// UBER target). Read service time = 75 us page read + worst-case
// decode; the gain follows the decode-latency headroom and peaks at
// the end of life (~30% in the paper).
#include <iostream>

#include "src/core/cross_layer.hpp"
#include "src/core/subsystem.hpp"
#include "src/util/series.hpp"
#include "src/util/stats.hpp"

using namespace xlf;

int main() {
  print_banner(std::cout, "Figure 11",
               "Read throughput gain from the cross-layer optimization");

  const core::SubsystemConfig cfg = core::SubsystemConfig::defaults();
  const nand::NandTiming timing(cfg.device.timing, cfg.device.array.ispp,
                                cfg.device.array.plan,
                                cfg.device.array.variability,
                                cfg.device.array.aging);
  const core::CrossLayerFramework fw(cfg.cross_layer, cfg.device.array.aging,
                                     timing, cfg.hv);

  SeriesTable table("PE_cycles");
  table.add_series("read_gain_pct");
  table.add_series("baseline_read_MiBps");
  table.add_series("maxread_read_MiBps");
  table.add_series("t_SV");
  table.add_series("t_DV");
  table.add_series("log10_UBER_maxread");

  for (double cycles : log_space(1.0, 1e6, 13)) {
    const core::Metrics base =
        fw.evaluate(core::OperatingPoint::baseline(), cycles);
    const core::Metrics maxread =
        fw.evaluate(core::OperatingPoint::max_read(), cycles);
    table.add_row(cycles,
                  {core::compare(maxread, base).read_throughput_gain_pct,
                   base.read_throughput.mib(), maxread.read_throughput.mib(),
                   static_cast<double>(base.t),
                   static_cast<double>(maxread.t), maxread.log10_uber});
  }

  table.print(std::cout, /*scientific=*/false);
  table.write_csv("fig11_read_gain.csv");
  std::cout << "\npaper: gain rises from ~0% to ~30% at end of life while "
               "UBER stays at the 1e-11 target\n";
  return 0;
}
