// Figure 5: RBER characterisation of ISPP-SV vs ISPP-DV over the
// device lifetime (program/erase cycles 1e2..1e6). Prints the
// calibrated closed-form law next to a Monte-Carlo measurement on the
// bit-true array (statistical placement mode), plus the improvement
// factor — the paper's "1 order of magnitude" arrow.
#include <iostream>

#include "src/nand/array.hpp"
#include "src/util/series.hpp"
#include "src/util/stats.hpp"

using namespace xlf;
using nand::ProgramAlgorithm;

namespace {

unsigned pages_for(double cycles) {
  // Keep roughly constant statistical quality: more pages where the
  // error rate is low.
  if (cycles <= 1e4) return 400;
  if (cycles <= 1e5) return 150;
  return 40;
}

}  // namespace

int main() {
  print_banner(std::cout, "Figure 5",
               "RBER characterization for ISPP-SV and ISPP-DV algorithms");

  nand::ArrayConfig config;
  const nand::RberModel model(config.plan, config.aging, config.ispp,
                              config.variability, config.interference);

  SeriesTable table("PE_cycles");
  table.add_series("RBER_SV_model");
  table.add_series("RBER_DV_model");
  table.add_series("RBER_SV_montecarlo");
  table.add_series("RBER_DV_montecarlo");
  table.add_series("improvement_x");

  for (double cycles : log_space(1e2, 1e6, 9)) {
    const double sv = model.rber(ProgramAlgorithm::kIsppSv, cycles);
    const double dv = model.rber(ProgramAlgorithm::kIsppDv, cycles);
    const unsigned pages = pages_for(cycles);
    const double mc_sv =
        monte_carlo_rber(config, ProgramAlgorithm::kIsppSv, cycles, pages,
                         nand::ProgramMode::kStatistical, 5);
    const double mc_dv =
        monte_carlo_rber(config, ProgramAlgorithm::kIsppDv, cycles, pages,
                         nand::ProgramMode::kStatistical, 7);
    table.add_row(cycles, {sv, dv, mc_sv, mc_dv, sv / dv});
  }

  table.print(std::cout);
  table.write_csv("fig05_rber.csv");
  std::cout << "\npaper: SV ~1e-3 at 1e6 cycles, DV one order of magnitude "
               "better across the whole lifetime\n";
  return 0;
}
