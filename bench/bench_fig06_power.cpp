// Figure 6: NAND program power for ISPP-SV vs ISPP-DV across the L1,
// L2, L3 target patterns over cycling (the paper sweeps 1e0..1e5).
// Expected shape: all curves inside the 0.15-0.18 W window, pattern
// ordering L1 < L2 < L3, and a ~7.5 mW DV-SV gap driven by the extra
// verify sensing.
#include <iostream>

#include "src/hv/power_model.hpp"
#include "src/nand/array.hpp"
#include "src/nand/timing.hpp"
#include "src/util/series.hpp"
#include "src/util/stats.hpp"

using namespace xlf;
using nand::Level;
using nand::ProgramAlgorithm;

int main() {
  print_banner(std::cout, "Figure 6",
               "Power consumption characterization for ISPP-SV and ISPP-DV");

  nand::ArrayConfig array;
  nand::TimingConfig timing_config;
  const nand::NandTiming timing(timing_config, array.ispp, array.plan,
                                array.variability, array.aging);
  const hv::HvConfig hv_config;
  const hv::NandPowerModel power(hv_config, timing);

  SeriesTable table("PE_cycles");
  table.add_series("SV_L1_W");
  table.add_series("DV_L1_W");
  table.add_series("SV_L2_W");
  table.add_series("DV_L2_W");
  table.add_series("SV_L3_W");
  table.add_series("DV_L3_W");

  for (double cycles : log_space(1.0, 1e5, 6)) {
    std::vector<double> row;
    for (Level level : {Level::kL1, Level::kL2, Level::kL3}) {
      row.push_back(
          power.program_power(ProgramAlgorithm::kIsppSv, cycles, level).value());
      row.push_back(
          power.program_power(ProgramAlgorithm::kIsppDv, cycles, level).value());
    }
    // Reorder: SV_L1, DV_L1, SV_L2, DV_L2, SV_L3, DV_L3 already matches.
    table.add_row(cycles, row);
  }

  table.print(std::cout, /*scientific=*/false);
  table.write_csv("fig06_power.csv");

  const Watts gap = power.dv_power_penalty(1e2);
  std::cout << "\nDV-SV penalty at 1e2 cycles (uniform pattern): "
            << to_string(gap) << " (paper: ~7.5 mW)\n";
  return 0;
}
