// Section 6.4 implementation complexity: the cost of runtime
// selectability. On the device side, the second programming algorithm
// only grows the embedded code ROM (or moves it to a controller-
// written SRAM); on the controller side, the adaptive codec carries a
// per-capability configuration ROM and worst-case-sized hardware.
#include <iostream>

#include "src/core/subsystem.hpp"
#include "src/ecc_hw/area.hpp"
#include "src/ecc_hw/rom.hpp"
#include "src/nand/device.hpp"
#include "src/util/series.hpp"

using namespace xlf;

int main() {
  print_banner(std::cout, "Section 6.4",
               "Implementation complexity of runtime selectability");

  // --- NAND code store -------------------------------------------------
  core::SubsystemConfig cfg = core::SubsystemConfig::defaults();

  nand::DeviceConfig single = cfg.device;
  single.available_algorithms = {nand::ProgramAlgorithm::kIsppSv};
  const nand::NandDevice fixed_device(single);

  const nand::NandDevice dual_device(cfg.device);

  nand::DeviceConfig sram = cfg.device;
  sram.store = nand::AlgorithmStore::kSram;
  sram.available_algorithms = {nand::ProgramAlgorithm::kIsppSv};
  nand::NandDevice sram_device(sram);
  sram_device.upload_algorithm(nand::ProgramAlgorithm::kIsppDv);

  std::cout << "NAND code store:\n"
            << "  fixed single-algorithm ROM : "
            << fixed_device.code_store_bytes() << " bytes\n"
            << "  dual-algorithm ROM         : "
            << dual_device.code_store_bytes() << " bytes (+"
            << dual_device.code_store_bytes() - fixed_device.code_store_bytes()
            << " bytes, "
            << 100.0 *
                   (static_cast<double>(dual_device.code_store_bytes()) /
                        fixed_device.code_store_bytes() -
                    1.0)
            << "% growth)\n"
            << "  SRAM store after upload    : "
            << sram_device.code_store_bytes() << " bytes ("
            << sram_device.algorithms_resident() << " algorithms resident)\n\n";

  // --- adaptive codec hardware ----------------------------------------
  const ecc_hw::EccHwConfig hw = cfg.cross_layer.ecc_hw;
  const ecc_hw::AreaModel area(hw);
  const ecc_hw::ConfigRom rom(hw);
  const ecc_hw::AreaBreakdown breakdown = area.breakdown();

  std::cout << "Adaptive BCH codec (t = " << hw.t_min << ".." << hw.t_max
            << ", p = " << hw.lfsr_parallelism
            << ", h = " << hw.chien_parallelism << "):\n"
            << "  encoder           : " << breakdown.encoder_ge << " GE\n"
            << "  syndrome block    : " << breakdown.syndrome_ge << " GE\n"
            << "  Berlekamp-Massey  : " << breakdown.berlekamp_massey_ge
            << " GE\n"
            << "  Chien search      : " << breakdown.chien_ge << " GE\n"
            << "  control           : " << breakdown.control_ge << " GE\n"
            << "  total             : " << area.total_ge() << " GE ("
            << area.area_mm2() << " mm^2 at 45 nm)\n"
            << "  config ROM        : " << rom.total_bits() << " bits ("
            << rom.total_kib() << " KiB) across " << rom.entries().size()
            << " capabilities\n"
            << "  Chien start index at t=65: " << rom.chien_start_index(65)
            << " (shortened-code skip)\n";
  return 0;
}
