// Figure 9: write-throughput penalty of the cross-layer configuration
// (ISPP-DV) against the ISPP-SV baseline over the lifetime. The
// program time dominates the write path (~1.5 ms vs ~51 us encode),
// so the loss tracks the DV/SV program-time ratio: ~40% on average,
// growing toward the end of life.
#include <iostream>

#include "src/core/cross_layer.hpp"
#include "src/core/subsystem.hpp"
#include "src/util/series.hpp"
#include "src/util/stats.hpp"

using namespace xlf;

int main() {
  print_banner(std::cout, "Figure 9",
               "Write throughput penalty of the cross-layer configuration");

  const core::SubsystemConfig cfg = core::SubsystemConfig::defaults();
  const nand::NandTiming timing(cfg.device.timing, cfg.device.array.ispp,
                                cfg.device.array.plan,
                                cfg.device.array.variability,
                                cfg.device.array.aging);
  const core::CrossLayerFramework fw(cfg.cross_layer, cfg.device.array.aging,
                                     timing, cfg.hv);

  SeriesTable table("PE_cycles");
  table.add_series("write_loss_pct");
  table.add_series("SV_write_MiBps");
  table.add_series("DV_write_MiBps");
  table.add_series("SV_program_ms");
  table.add_series("DV_program_ms");

  double loss_sum = 0.0;
  std::size_t points = 0;
  for (double cycles : log_space(1.0, 1e6, 13)) {
    const core::Metrics base =
        fw.evaluate(core::OperatingPoint::baseline(), cycles);
    const core::Metrics cross =
        fw.evaluate(core::OperatingPoint::max_read(), cycles);
    const double loss =
        core::compare(cross, base).write_throughput_loss_pct;
    loss_sum += loss;
    ++points;
    table.add_row(
        cycles,
        {loss, base.write_throughput.mib(), cross.write_throughput.mib(),
         timing.program_time(nand::ProgramAlgorithm::kIsppSv, cycles).millis(),
         timing.program_time(nand::ProgramAlgorithm::kIsppDv, cycles).millis()});
  }

  table.print(std::cout, /*scientific=*/false);
  table.write_csv("fig09_write_loss.csv");
  std::cout << "\nmean loss over lifetime: " << loss_sum / points
            << "% (paper: ~40% average, 40-48% over life)\n";
  return 0;
}
