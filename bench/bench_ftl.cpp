// Microbenchmarks for the FTL hot paths: L2P lookup and GC victim
// selection at full-device scale. These are the operations a real
// controller performs on every host request and every GC trigger, so
// they join the perf trajectory next to the codec microbenches.
//
// Pure data-structure benchmarks — no bit-true NAND array behind them
// — so the device here can be SSD-sized (4 dies x 4096 blocks x 64
// pages) instead of the simulation-scale geometries the tests use.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/ftl/allocator.hpp"
#include "src/ftl/mapping.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace xlf;

constexpr std::uint32_t kDies = 4;
constexpr std::uint32_t kBlocks = 4096;
constexpr std::uint32_t kPagesPerBlock = 64;
constexpr std::uint32_t kLogical =
    static_cast<std::uint32_t>(0.9 * kDies * kBlocks * kPagesPerBlock);

// A fully mapped device: every logical page points somewhere.
ftl::PageMap full_map() {
  ftl::PageMap map(kDies, kBlocks, kPagesPerBlock, kLogical);
  std::uint32_t die = 0, block = 0, page = 0;
  for (ftl::Lpa lpa = 0; lpa < kLogical; ++lpa) {
    map.map(lpa, ftl::Ppa{die, block, page});
    if (++page == kPagesPerBlock) {
      page = 0;
      if (++block == kBlocks) {
        block = 0;
        ++die;
      }
    }
  }
  return map;
}

void BM_L2pLookup(benchmark::State& state) {
  const ftl::PageMap map = full_map();
  Rng rng(42);
  // Pre-drawn addresses so the generator stays out of the loop.
  std::vector<ftl::Lpa> lpas(4096);
  for (auto& lpa : lpas) lpa = static_cast<ftl::Lpa>(rng.below(kLogical));
  std::size_t i = 0;
  for (auto _ : state) {
    const ftl::Ppa ppa = map.lookup(lpas[i++ & 4095]);
    benchmark::DoNotOptimize(ppa);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_L2pLookup);

// One die's worth of closed blocks with a skewed valid-count profile,
// scanned by each policy the way Ftl::ensure_capacity does.
struct VictimFixture {
  ftl::DieAllocator alloc;
  std::vector<std::uint32_t> valid;

  VictimFixture()
      : alloc(ftl::AllocatorConfig{kBlocks, kPagesPerBlock,
                                   ftl::WearLeveling::kDynamic}),
        valid(kBlocks) {
    Rng rng(7);
    // Close all but a few blocks; hot blocks are mostly invalid.
    for (std::uint32_t b = 0; b + 4 < kBlocks; ++b) {
      for (std::uint32_t p = 0; p < kPagesPerBlock; ++p) {
        alloc.take_page(ftl::DieAllocator::Stream::kHost);
      }
      valid[b] = static_cast<std::uint32_t>(rng.below(kPagesPerBlock + 1));
      alloc.stamp_write(b, rng.below(1u << 20));
    }
  }
};

void BM_GcVictimGreedy(benchmark::State& state) {
  const VictimFixture fixture;
  const auto valid_count = [&](std::uint32_t b) { return fixture.valid[b]; };
  for (auto _ : state) {
    auto victim = fixture.alloc.pick_victim(ftl::GcPolicy::kGreedy,
                                            valid_count, 1u << 20);
    benchmark::DoNotOptimize(victim);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GcVictimGreedy);

void BM_GcVictimCostBenefit(benchmark::State& state) {
  const VictimFixture fixture;
  const auto valid_count = [&](std::uint32_t b) { return fixture.valid[b]; };
  for (auto _ : state) {
    auto victim = fixture.alloc.pick_victim(ftl::GcPolicy::kCostBenefit,
                                            valid_count, 1u << 20);
    benchmark::DoNotOptimize(victim);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GcVictimCostBenefit);

}  // namespace

BENCHMARK_MAIN();
