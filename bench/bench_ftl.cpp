// Microbenchmarks for the FTL hot paths: L2P lookup and GC victim
// selection at full-device scale. These are the operations a real
// controller performs on every host request and every GC trigger, so
// they join the perf trajectory next to the codec microbenches.
//
// Pure data-structure benchmarks — no bit-true NAND array behind them
// — so the device here can be SSD-sized (4 dies x 4096 blocks x 64
// pages) instead of the simulation-scale geometries the tests use.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/ftl/allocator.hpp"
#include "src/ftl/mapping.hpp"
#include "src/host/queues.hpp"
#include "src/policy/registry.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace xlf;

constexpr std::uint32_t kDies = 4;
constexpr std::uint32_t kBlocks = 4096;
constexpr std::uint32_t kPagesPerBlock = 64;
constexpr std::uint32_t kLogical =
    static_cast<std::uint32_t>(0.9 * kDies * kBlocks * kPagesPerBlock);

// A fully mapped device: every logical page points somewhere.
ftl::PageMap full_map() {
  ftl::PageMap map(kDies, kBlocks, kPagesPerBlock, kLogical);
  std::uint32_t die = 0, block = 0, page = 0;
  for (ftl::Lpa lpa = 0; lpa < kLogical; ++lpa) {
    map.map(lpa, ftl::Ppa{die, block, page});
    if (++page == kPagesPerBlock) {
      page = 0;
      if (++block == kBlocks) {
        block = 0;
        ++die;
      }
    }
  }
  return map;
}

void BM_L2pLookup(benchmark::State& state) {
  const ftl::PageMap map = full_map();
  Rng rng(42);
  // Pre-drawn addresses so the generator stays out of the loop.
  std::vector<ftl::Lpa> lpas(4096);
  for (auto& lpa : lpas) lpa = static_cast<ftl::Lpa>(rng.below(kLogical));
  std::size_t i = 0;
  for (auto _ : state) {
    const ftl::Ppa ppa = map.lookup(lpas[i++ & 4095]);
    benchmark::DoNotOptimize(ppa);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_L2pLookup);

// One die's worth of closed blocks with a skewed valid-count profile,
// scanned by each policy the way Ftl::ensure_capacity does. Each
// scoring rule runs twice: through the policy::GcPolicy virtual
// interface (the production path since the policy-plane redesign) and
// as a hand-inlined lambda over the same pick_victim_scored scan —
// the delta pins the virtual-dispatch cost of the new interface on
// the GC hot path.
struct VictimFixture {
  ftl::DieAllocator alloc;
  std::vector<std::uint32_t> valid;

  VictimFixture()
      : alloc(ftl::AllocatorConfig{
            kBlocks, kPagesPerBlock,
            policy::PolicyRegistry<policy::WearPolicy>::instance()
                .make_shared("dynamic")}),
        valid(kBlocks) {
    Rng rng(7);
    // Close all but a few blocks; hot blocks are mostly invalid.
    for (std::uint32_t b = 0; b + 4 < kBlocks; ++b) {
      for (std::uint32_t p = 0; p < kPagesPerBlock; ++p) {
        alloc.take_page(ftl::DieAllocator::Stream::kHost);
      }
      valid[b] = static_cast<std::uint32_t>(rng.below(kPagesPerBlock + 1));
      alloc.stamp_write(b, rng.below(1u << 20));
    }
  }
};

void BM_GcVictimGreedyVirtual(benchmark::State& state) {
  const VictimFixture fixture;
  const auto policy =
      policy::PolicyRegistry<policy::GcPolicy>::instance().make("greedy");
  const auto valid_count = [&](std::uint32_t b) { return fixture.valid[b]; };
  for (auto _ : state) {
    auto victim = fixture.alloc.pick_victim(*policy, valid_count, 1u << 20);
    benchmark::DoNotOptimize(victim);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GcVictimGreedyVirtual);

void BM_GcVictimGreedyInlined(benchmark::State& state) {
  const VictimFixture fixture;
  const auto valid_count = [&](std::uint32_t b) { return fixture.valid[b]; };
  const auto score = [](const policy::GcBlockView& view) {
    return static_cast<double>(view.pages_per_block - view.valid_pages);
  };
  for (auto _ : state) {
    auto victim =
        fixture.alloc.pick_victim_scored(score, valid_count, 1u << 20);
    benchmark::DoNotOptimize(victim);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GcVictimGreedyInlined);

void BM_GcVictimCostBenefitVirtual(benchmark::State& state) {
  const VictimFixture fixture;
  const auto policy =
      policy::PolicyRegistry<policy::GcPolicy>::instance().make(
          "cost-benefit");
  const auto valid_count = [&](std::uint32_t b) { return fixture.valid[b]; };
  for (auto _ : state) {
    auto victim = fixture.alloc.pick_victim(*policy, valid_count, 1u << 20);
    benchmark::DoNotOptimize(victim);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GcVictimCostBenefitVirtual);

void BM_GcVictimCostBenefitInlined(benchmark::State& state) {
  const VictimFixture fixture;
  const auto valid_count = [&](std::uint32_t b) { return fixture.valid[b]; };
  const auto score = [](const policy::GcBlockView& view) {
    const double u =
        static_cast<double>(view.valid_pages) / view.pages_per_block;
    const double age =
        static_cast<double>(view.now - std::min<std::uint64_t>(
                                           view.now, view.last_write)) +
        1.0;
    return age * (1.0 - u) / (2.0 * std::max(u, 1e-9));
  };
  for (auto _ : state) {
    auto victim =
        fixture.alloc.pick_victim_scored(score, valid_count, 1u << 20);
    benchmark::DoNotOptimize(victim);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GcVictimCostBenefitInlined);

// Victim selection at production block counts: the incremental index
// (O(pages_per_block) bucket-head probes per pick) against the linear
// oracle scan (O(blocks)), both through the production pick_victim
// entry point so the numbers include the policy virtual call. Each
// iteration is one steady-state GC step: a pick plus an
// invalidate/remap churn pair on a closed block, so the index path
// also pays its per-update maintenance. Geometry uses 16 pages/block
// to keep the 1M-block fixture's one-time population tractable; the
// pick asymptotics only depend on the block count (linear) vs the
// bucket count (indexed).
constexpr std::uint32_t kScalePages = 16;

struct VictimScaleFixture {
  ftl::DieAllocator alloc;
  std::vector<std::uint32_t> churn;  // closed blocks with >= 1 valid page
  std::uint64_t now = 1u << 20;      // beyond every setup stamp

  VictimScaleFixture(std::uint32_t blocks, ftl::GcIndexKind kind)
      : alloc(ftl::AllocatorConfig{
            blocks, kScalePages,
            policy::PolicyRegistry<policy::WearPolicy>::instance()
                .make_shared("dynamic"),
            kind}) {
    Rng rng(11);
    for (std::uint32_t b = 0; b + 4 < blocks; ++b) {
      std::uint32_t block = 0;
      for (std::uint32_t p = 0; p < kScalePages; ++p) {
        block = alloc.take_page(ftl::DieAllocator::Stream::kHost).first;
      }
      const auto valid =
          static_cast<std::uint32_t>(rng.below(kScalePages + 1));
      for (std::uint32_t v = 0; v < valid; ++v) alloc.on_page_mapped(block);
      alloc.stamp_write(block, rng.below(1u << 20));
      if (valid >= 1) churn.push_back(block);
    }
  }
};

// Fixtures cache across the harness's calibration re-entries (the 1M
// population pass is seconds); the churn pair is net-zero, so the
// block population a later invocation sees is the one it left.
VictimScaleFixture& scale_fixture(std::uint32_t blocks,
                                  ftl::GcIndexKind kind) {
  static std::map<std::pair<std::uint32_t, int>,
                  std::unique_ptr<VictimScaleFixture>>
      cache;
  auto& slot = cache[{blocks, static_cast<int>(kind)}];
  if (slot == nullptr) {
    slot = std::make_unique<VictimScaleFixture>(blocks, kind);
  }
  return *slot;
}

void BM_VictimIndex(benchmark::State& state, const char* policy_name,
                    bool indexed) {
  const auto blocks = static_cast<std::uint32_t>(state.range(0));
  const ftl::GcIndexKind kind = indexed
                                    ? ftl::gc_index_kind_for(policy_name)
                                    : ftl::GcIndexKind::kNone;
  VictimScaleFixture& fixture = scale_fixture(blocks, kind);
  const auto policy =
      policy::PolicyRegistry<policy::GcPolicy>::instance().make(policy_name);
  const auto valid_count = [&](std::uint32_t b) {
    return fixture.alloc.cached_valid(b);
  };
  std::size_t i = 0;
  for (auto _ : state) {
    const auto victim =
        fixture.alloc.pick_victim(*policy, valid_count, fixture.now++);
    benchmark::DoNotOptimize(victim);
    const std::uint32_t target = fixture.churn[i++ % fixture.churn.size()];
    fixture.alloc.on_page_invalidated(target);
    fixture.alloc.on_page_mapped(target);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_VictimIndex, greedy_indexed, "greedy", true)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_VictimIndex, greedy_linear, "greedy", false)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_VictimIndex, cost_benefit_indexed, "cost-benefit", true)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(1 << 20);
BENCHMARK_CAPTURE(BM_VictimIndex, cost_benefit_linear, "cost-benefit", false)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(1 << 20);

// The host submission path the multi-queue interface adds in front of
// every command: submit onto a queue, arbitrate across the backlogs,
// pop the winner, post its completion. 8 queues under the given
// arbitration policy, all backlogged — the arbiter's worst case (every
// pick scans every queue).
void BM_HostSubmissionPath(benchmark::State& state,
                           const char* arbitration) {
  host::HostConfig config;
  config.queues = 8;
  config.arbitration = arbitration;
  config.queue_weights = {32, 16, 8, 8, 4, 4, 2, 1};
  host::HostInterface iface(config);
  // Pre-fill so arbitrate always has 8 eligible queues to weigh.
  host::Command command;
  command.type = host::CmdType::kWrite;
  for (std::uint16_t q = 0; q < 8; ++q) {
    command.queue = q;
    for (int i = 0; i < 4; ++i) iface.submit(command, Seconds{0.0});
  }
  double clock = 0.0;
  for (auto _ : state) {
    const auto pick = iface.arbitrate();
    auto [head, arrival] = iface.pop(*pick);
    // Refill the popped slot so the backlog shape stays constant.
    iface.submit(head, Seconds{clock});
    host::Completion done;
    done.type = head.type;
    done.queue = head.queue;
    done.submitted = arrival;
    done.completed = Seconds{clock += 1e-6};
    // Default config: stats only, no completion-ring retention — the
    // same shape the simulator drives, so the loop is steady-state.
    iface.complete(done);
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_HostSubmissionPath, round_robin, "round-robin");
BENCHMARK_CAPTURE(BM_HostSubmissionPath, weighted, "weighted");

}  // namespace

BENCHMARK_MAIN();
